"""EventLog: positional ids, multi-process appends, follow() draining."""

import json

from repro.serve.events import EventLog


def test_ids_are_derived_at_read_time(tmp_path):
    log = EventLog(tmp_path / "job.events.jsonl")
    log.append("started", job="job-000001")
    log.append("point", k=1, n=2)
    log.append("finished")
    # nothing persists an id: position is the id
    for line in (tmp_path / "job.events.jsonl").read_text().splitlines():
        assert "id" not in json.loads(line)
    events = log.read()
    assert [e["id"] for e in events] == [1, 2, 3]
    assert [e["event"] for e in events] == ["started", "point",
                                           "finished"]
    # resume skips exactly the already-seen prefix
    assert [e["id"] for e in log.read(after=2)] == [3]


def test_interleaved_appenders_never_share_an_id(tmp_path):
    """Two processes appending concurrently each get a unique id.

    The daemon (cancel/reconcile) and the worker hold independent
    EventLog instances over the same file; ids minted at read time
    cannot collide no matter how their appends interleave.
    """
    path = tmp_path / "job.events.jsonl"
    daemon, worker = EventLog(path), EventLog(path)
    worker.append("started")
    daemon.append("cancelled")       # daemon races the worker...
    worker.append("point", k=1, n=1)
    ids = [e["id"] for e in EventLog(path).read()]
    assert ids == sorted(set(ids)) == [1, 2, 3]


def test_legacy_persisted_ids_are_overridden_by_position(tmp_path):
    path = tmp_path / "job.events.jsonl"
    path.write_text('{"id":1,"event":"started"}\n'
                    '{"id":1,"event":"point"}\n')   # duplicate on disk
    assert [e["id"] for e in EventLog(path).read()] == [1, 2]


def test_torn_trailing_line_is_skipped(tmp_path):
    path = tmp_path / "job.events.jsonl"
    log = EventLog(path)
    log.append("started")
    with path.open("a") as handle:
        handle.write('{"event":"poi')           # torn mid-append
    assert [e["event"] for e in log.read()] == ["started"]


def test_follow_stops_at_terminal_event(tmp_path):
    log = EventLog(tmp_path / "job.events.jsonl")
    log.append("started")
    log.append("finished")
    log.append("ghost")              # never reached: stream ended
    events = [e["event"] for e in log.follow(poll=0.01)]
    assert events == ["started", "finished"]


def test_follow_grace_drain_delivers_late_terminal_event(tmp_path):
    """The writer marks the job file terminal *before* its terminal
    event lands: follow(done=...) must wait one poll and re-drain."""
    import threading

    log = EventLog(tmp_path / "job.events.jsonl")
    log.append("started")
    # done() says "terminal" immediately, but the terminal event only
    # arrives a beat later — as a writer racing the job-file write does
    late = threading.Timer(0.05, lambda: log.append("finished"))
    late.start()
    try:
        events = [e["event"]
                  for e in log.follow(poll=0.3, done=lambda: True)]
    finally:
        late.join()
    assert events == ["started", "finished"]
