"""Shared fixtures and helpers for the test suite."""

import numpy as np
import pytest

from repro.disk import Disk
from repro.driver import InstrumentedIDEDriver, ProcTraceTransport
from repro.sim import Simulator


def drive(sim, gen, until=None):
    """Run generator ``gen`` as a process and return its value."""
    box = {}

    def runner():
        box["value"] = yield from gen

    sim.process(runner())
    sim.run(until=until)
    return box.get("value")


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def traced_driver(sim):
    """A disk + instrumented driver pair with a fast-draining transport."""
    disk = Disk(sim, rng=np.random.default_rng(0))
    transport = ProcTraceTransport(sim, drain_interval=0.25)
    driver = InstrumentedIDEDriver(sim, disk, transport=transport)
    return driver
