"""Multi-tenant auth and quotas: tenants.toml, 401/403/429, metrics.

The end-to-end tests run an accept-only daemon (``workers=0``): quota
enforcement happens at ``POST /v1/jobs``, so nothing needs to execute.
"""

import pytest

from repro.serve import (
    AuthError,
    ExperimentService,
    QuotaExceeded,
    ServeClient,
    Tenants,
)
from repro.serve.tenants import directory_bytes

TENANTS_TOML = """\
[tenants.team-a]
token = "token-a"
max_queued = 2
quota_mb = 1

[tenants.team-b]
token = "token-b"
max_running = 1
catalogs = ["team-b", "scratch"]
"""


# -- parsing -------------------------------------------------------------------
def test_parse_tenants_toml():
    tenants = Tenants.parse(TENANTS_TOML)
    assert tenants.enforced
    a = tenants.tenants["team-a"]
    assert a.token == "token-a"
    assert a.max_queued == 2 and a.quota_mb == 1.0
    assert a.catalogs == ("team-a",)          # defaults to the name
    assert a.default_catalog == "team-a"
    b = tenants.tenants["team-b"]
    assert b.owns_catalog("scratch") and not b.owns_catalog("team-a")
    assert tenants.running_limit("team-b") == 1
    assert tenants.running_limit("team-a") == 0
    assert tenants.running_limit(None) == 0


def test_parse_rejects_tokenless_tenant():
    with pytest.raises(ValueError, match="token"):
        Tenants.parse("[tenants.ghost]\nmax_queued = 1\n")


def test_missing_file_means_open_daemon(tmp_path):
    tenants = Tenants.load(tmp_path / "tenants.toml")
    assert not tenants.enforced
    assert tenants.authenticate(None) is None
    # no quotas on an open daemon either
    tenants.authorize_submit(None, "default", queued=999,
                             catalog_bytes=10**12)


def test_explicitly_named_missing_file_fails_closed(tmp_path):
    """A typo'd --tenants path must not silently start an open daemon."""
    with pytest.raises(FileNotFoundError):
        Tenants.load(tmp_path / "typo.toml", required=True)
    with pytest.raises(FileNotFoundError):
        ExperimentService(tmp_path / "root",
                          tenants=tmp_path / "typo.toml")
    # the implicit ROOT/tenants.toml default still means open mode
    service = ExperimentService(tmp_path / "root2", workers=0).start()
    try:
        assert not service.tenants.enforced
    finally:
        service.shutdown()


# -- authentication ------------------------------------------------------------
def test_authenticate_resolves_and_rejects():
    tenants = Tenants.parse(TENANTS_TOML)
    assert tenants.authenticate("Bearer token-a").name == "team-a"
    assert tenants.authenticate("bearer token-b").name == "team-b"
    for header in (None, "", "token-a", "Basic token-a",
                   "Bearer ", "Bearer wrong"):
        with pytest.raises(AuthError) as err:
            tenants.authenticate(header)
        assert err.value.status == 401, header


def test_authorize_submit_verdicts():
    tenants = Tenants.parse(TENANTS_TOML)
    a = tenants.tenants["team-a"]
    tenants.authorize_submit(a, "team-a", queued=0, catalog_bytes=0)
    with pytest.raises(AuthError) as err:
        tenants.authorize_submit(a, "team-b", queued=0, catalog_bytes=0)
    assert err.value.status == 403
    with pytest.raises(QuotaExceeded) as err:
        tenants.authorize_submit(a, "team-a", queued=2, catalog_bytes=0)
    assert err.value.status == 429
    with pytest.raises(QuotaExceeded) as err:
        tenants.authorize_submit(a, "team-a", queued=0,
                                 catalog_bytes=2 * 1024 * 1024)
    assert err.value.status == 429


def test_directory_bytes(tmp_path):
    assert directory_bytes(tmp_path / "nope") == 0
    (tmp_path / "sub").mkdir()
    (tmp_path / "sub" / "f").write_bytes(b"x" * 1000)
    (tmp_path / "g").write_bytes(b"y" * 24)
    assert directory_bytes(tmp_path) == 1024


# -- scheduler cap -------------------------------------------------------------
def test_max_running_holds_jobs_in_scheduler(tmp_path):
    from repro.serve import JobStore, WorkerPool

    tenants = Tenants.parse(TENANTS_TOML)
    store = JobStore(tmp_path / "jobs")
    pool = WorkerPool(tmp_path, store, workers=0, tenants=tenants)
    first = store.create("experiment", tenant="team-b")
    second = store.create("experiment", tenant="team-b")
    pool.submit(first.id)
    pool.submit(second.id)
    with pool._cond:
        assert pool._pick_ready() == first.id
        # one team-b job already running: the cap (max_running = 1)
        # holds the second without rejecting it
        pool._proc_tenants[first.id] = "team-b"
        del pool._queue[first.id]
        assert pool._pick_ready() is None
        pool._proc_tenants.clear()
        assert pool._pick_ready() == second.id


# -- end to end ----------------------------------------------------------------
@pytest.fixture
def service(tmp_path):
    root = tmp_path / "root"
    root.mkdir()
    (root / "tenants.toml").write_text(TENANTS_TOML)
    service = ExperimentService(root, workers=0).start()
    yield service
    service.shutdown()


def test_every_jobs_route_requires_token(service):
    anonymous = ServeClient(service.url)
    stranger = ServeClient(service.url, token="wrong")
    owner = ServeClient(service.url, token="token-a")
    job = owner.submit(duration=50.0)
    for client in (anonymous, stranger):
        for call in (lambda: client.submit(duration=50.0),
                     lambda: client.jobs(),
                     lambda: client.job(job["id"]),
                     lambda: client.cancel(job["id"]),
                     lambda: list(client.events(job["id"]))):
            with pytest.raises(AuthError) as err:
                call()
            assert err.value.status == 401
    # service-level routes stay open (no job data in them)
    assert sorted(anonymous.status()["tenants"]) == ["team-a", "team-b"]


def test_jobs_are_scoped_to_their_owning_tenant(service):
    team_a = ServeClient(service.url, token="token-a")
    team_b = ServeClient(service.url, token="token-b")
    job = team_a.submit(duration=50.0)
    # the table only shows the caller's own jobs
    assert [j["id"] for j in team_a.jobs()] == [job["id"]]
    assert team_b.jobs() == []
    # reading, streaming, or cancelling another tenant's job is 403
    for call in (lambda: team_b.job(job["id"]),
                 lambda: list(team_b.events(job["id"])),
                 lambda: team_b.cancel(job["id"])):
        with pytest.raises(AuthError) as err:
            call()
        assert err.value.status == 403
    # the owner retains full control
    assert team_a.job(job["id"])["state"] == "queued"
    assert team_a.cancel(job["id"])["state"] == "cancelled"


def test_tenant_submission_quotas_and_catalogs(service):
    client = ServeClient(service.url, token="token-a")
    job = client.submit(duration=50.0)
    assert job["tenant"] == "team-a"
    # the tenant's own catalog is the default sink
    assert service.store.load(job["id"]).spec["catalog"] == "team-a"

    with pytest.raises(AuthError) as err:
        client.submit(duration=50.0, catalog="team-b")
    assert err.value.status == 403

    client.submit(duration=50.0)                  # queued = 2 = max
    with pytest.raises(QuotaExceeded) as err:
        client.submit(duration=50.0)
    assert err.value.status == 429

    # team-b has its own limits; team-a's full queue does not gate it
    other = ServeClient(service.url, token="token-b")
    assert other.submit(duration=50.0)["tenant"] == "team-b"

    metrics = client.metrics()
    submitted = metrics["serve.tenant.jobs_submitted"]["children"]
    assert submitted["team-a"] == 2 and submitted["team-b"] == 1
    rejected = metrics["serve.tenant.rejected"]["children"]
    assert rejected["catalog"] == 1 and rejected["quota"] == 1


def test_read_routes_are_tenant_scoped(service):
    # seed two tenant catalogs on disk (empty is enough for the index)
    for name in ("team-a", "team-b"):
        (service.root / "catalogs" / name).mkdir(parents=True,
                                                 exist_ok=True)
    anonymous = ServeClient(service.url)
    team_a = ServeClient(service.url, token="token-a")
    team_b = ServeClient(service.url, token="token-b")

    # unauthenticated reads are 401 on a tenants-enforcing daemon
    for call in (lambda: anonymous.runs(),
                 lambda: anonymous.analysis("r1", catalog="team-a")):
        with pytest.raises(AuthError) as err:
            call()
        assert err.value.status == 401

    # a foreign catalog is 403 — whether it exists ("team-b") or not
    # ("ghost"), so names cannot be probed
    for catalog in ("team-b", "ghost"):
        for call in (lambda: team_a.runs(catalog=catalog),
                     lambda: team_a.analysis("r1", catalog=catalog)):
            with pytest.raises(AuthError) as err:
                call()
            assert err.value.status == 403

    # the default index is scoped to the caller's own catalogs
    assert sorted(team_a.runs()) == ["team-a"]
    assert sorted(team_b.runs()) == ["team-b"]
    assert sorted(team_a.runs(catalog="team-a")) == ["team-a"]

    # with no explicit ?catalog=, the tenant's own catalog is the
    # default (404 proves it resolved there: no such run yet)
    from repro.serve import ServeError
    with pytest.raises(ServeError) as err:
        team_a.analysis("no-such-run")
    assert err.value.status == 404
    assert "team-a" in str(err.value)


def test_disk_quota_rejects_submit(service):
    client = ServeClient(service.url, token="token-a")
    catalog = service.root / "catalogs" / "team-a"
    catalog.mkdir(parents=True, exist_ok=True)
    (catalog / "bulk.bin").write_bytes(b"\0" * (2 * 1024 * 1024))
    with pytest.raises(QuotaExceeded, match="quota_mb"):
        client.submit(duration=50.0)
    gauge = client.metrics()["serve.tenant.catalog_bytes"]["children"]
    assert gauge["team-a"] >= 2 * 1024 * 1024
