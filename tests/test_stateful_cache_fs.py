"""Stateful (rule-based) property tests for the buffer cache and FS.

Hypothesis drives random operation sequences against the buffer cache
and the filesystem, checking the structural invariants after every step:
capacity is never exceeded, dirty accounting matches, sync really cleans,
and FS block accounting stays consistent with the zone allocators.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.disk import Disk
from repro.driver import InstrumentedIDEDriver, ProcTraceTransport
from repro.kernel import BufferCache, FileSystem
from repro.sim import Simulator

CAPACITY = 16


class CacheMachine(RuleBasedStateMachine):
    """Random reads/writes/flushes against a small BufferCache."""

    @initialize()
    def setup(self):
        self.sim = Simulator()
        disk = Disk(self.sim, rng=np.random.default_rng(0))
        driver = InstrumentedIDEDriver(self.sim, disk,
                                       transport=ProcTraceTransport(self.sim))
        self.cache = BufferCache(self.sim, driver, capacity_blocks=CAPACITY,
                                 sectors_per_block=2, cluster_blocks=3)
        self.model_dirty = set()

    def _run(self, gen):
        self.sim.process(gen)
        self.sim.run(until=self.sim.now + 60.0)

    @rule(block=st.integers(min_value=0, max_value=60))
    def read(self, block):
        self._run(self.cache.read_block(block))
        assert self.cache.contains(block)
        self.model_dirty &= self._cached_dirty()

    @rule(block=st.integers(min_value=0, max_value=60))
    def write(self, block):
        self._run(self.cache.write_block(block))
        assert self.cache.is_dirty(block)
        self.model_dirty.add(block)
        self.model_dirty &= self._cached_dirty() | {block}

    @rule(start=st.integers(min_value=0, max_value=50),
          count=st.integers(min_value=1, max_value=8))
    def read_range(self, start, count):
        self._run(self.cache.read_range(start, count))
        for b in range(start, start + count):
            assert self.cache.contains(b)
        self.model_dirty &= self._cached_dirty()

    @rule()
    def sync(self):
        self._run(self.cache.sync())
        assert self.cache.dirty_count == 0
        self.model_dirty.clear()

    @rule()
    def drop_clean(self):
        dirty_before = self._cached_dirty()
        self.cache.drop_clean()
        assert self._cached_dirty() == dirty_before
        assert len(self.cache) == self.cache.dirty_count

    def _cached_dirty(self):
        return {b for b in range(62) if self.cache.is_dirty(b)}

    @invariant()
    def capacity_respected(self):
        if hasattr(self, "cache"):
            assert len(self.cache) <= CAPACITY

    @invariant()
    def dirty_accounting_consistent(self):
        if hasattr(self, "cache"):
            assert self.cache.dirty_count == len(self._cached_dirty())
            # every dirty block we expect is still dirty (eviction may
            # have cleaned some, but cleaning happens via writeback which
            # resets is_dirty -- so model ⊇ cache-dirty is NOT guaranteed;
            # cache-dirty ⊆ model is:
            assert self._cached_dirty() <= self.model_dirty | set()


class FsMachine(RuleBasedStateMachine):
    """Random create/extend/unlink sequences against the filesystem."""

    @initialize()
    def setup(self):
        self.sim = Simulator()
        disk = Disk(self.sim, rng=np.random.default_rng(0))
        driver = InstrumentedIDEDriver(self.sim, disk,
                                       transport=ProcTraceTransport(self.sim))
        cache = BufferCache(self.sim, driver, capacity_blocks=4096,
                            sectors_per_block=2)
        self.fs = FileSystem(cache)
        self.counter = 0
        self.live = {}              # path -> expected size
        self.free0 = self.fs.zone_blocks_free("data")

    def _run(self, gen):
        box = {}

        def runner():
            box["v"] = yield from gen

        self.sim.process(runner())
        self.sim.run(until=self.sim.now + 60.0)
        return box.get("v")

    @rule()
    def create(self):
        path = f"/f{self.counter}"
        self.counter += 1
        self._run(self.fs.create(path))
        self.live[path] = 0
        assert self.fs.exists(path)

    @rule(kb=st.integers(min_value=1, max_value=64))
    def extend(self, kb):
        if not self.live:
            return
        path = sorted(self.live)[0]
        inode = self.fs.lookup(path)
        new_size = max(self.live[path], inode.size_bytes + kb * 1024)
        self._run(self.fs.truncate_extend(inode, new_size))
        self.live[path] = new_size
        assert inode.size_bytes == new_size
        assert inode.nblocks == -(-new_size // 1024)

    @rule()
    def unlink(self):
        if not self.live:
            return
        path = sorted(self.live)[-1]
        self._run(self.fs.unlink(path))
        del self.live[path]
        assert not self.fs.exists(path)

    @invariant()
    def block_accounting_conserved(self):
        if not hasattr(self, "fs"):
            return
        used = 0
        for inode in self.fs.iter_inodes():
            if inode.zone == "data" and not inode.is_dir:
                used += inode.nblocks + len(inode.indirect_blocks)
        dir_blocks = sum(i.nblocks for i in self.fs.iter_inodes()
                         if i.is_dir)
        assert self.fs.zone_blocks_free("data") == \
            self.free0 - used - dir_blocks + self._dir_blocks0()

    def _dir_blocks0(self):
        # the root directory may have had blocks at init time (it doesn't)
        return 0

    @invariant()
    def sizes_match_model(self):
        if not hasattr(self, "fs"):
            return
        for path, size in self.live.items():
            assert self.fs.lookup(path).size_bytes == size


TestCacheMachine = CacheMachine.TestCase
TestCacheMachine.settings = settings(max_examples=25,
                                     stateful_step_count=30,
                                     deadline=None)
TestFsMachine = FsMachine.TestCase
TestFsMachine.settings = settings(max_examples=25, stateful_step_count=30,
                                  deadline=None)
