"""Unit tests for metrics and Table 1 rendering."""

import pytest

from repro.core import TraceDataset, compute_metrics
from repro.core.experiments import ExperimentResult
from repro.core.table import render_table1, table1_rows


def make_trace():
    return TraceDataset.from_records([
        (0.0, 100, 0, 1, 1.0, 0),
        (5.0, 200, 1, 2, 4.0, 0),
        (9.0, 300, 1, 3, 1.0, 1),
        (10.0, 400, 1, 2, 2.0, 1),
    ])


def test_compute_metrics_basic():
    m = compute_metrics(make_trace(), label="x", duration=20.0)
    assert m.total_requests == 4
    assert m.read_fraction == pytest.approx(0.25)
    assert m.read_pct == 25 and m.write_pct == 75
    assert m.requests_per_node == 2.0           # 4 requests over 2 nodes
    assert m.requests_per_second == pytest.approx(4 / 20.0 / 2)
    assert m.mean_size_kb == pytest.approx(2.0)
    assert m.mean_pending == pytest.approx(2.0)


def test_metrics_duration_defaults_to_span():
    m = compute_metrics(make_trace())
    assert m.duration == pytest.approx(10.0)


def test_metrics_empty_trace():
    m = compute_metrics(TraceDataset.empty(), label="empty")
    assert m.total_requests == 0
    assert m.read_fraction == 0.0
    assert m.requests_per_second == 0.0
    assert m.read_pct == 0 and m.write_pct == 0


def test_pct_split_always_sums_to_100():
    """Regression: rounding both fractions independently could lose a
    point — 17 reads in 40 requests rounded to 42% + 57%."""
    from repro.core.metrics import WorkloadMetrics

    def with_read_fraction(f):
        return WorkloadMetrics(label="x", total_requests=40,
                               read_fraction=f, write_fraction=1.0 - f,
                               requests_per_second=1.0,
                               requests_per_node=1.0, duration=1.0,
                               mean_size_kb=1.0, mean_pending=1.0)

    m = with_read_fraction(17 / 40)
    assert (m.read_pct, m.write_pct) == (42, 58)
    for reads in range(41):
        m = with_read_fraction(reads / 40)
        assert m.read_pct + m.write_pct == 100


def result_for(name):
    return ExperimentResult(name=name, trace=make_trace(), duration=20.0,
                            nnodes=2)


def test_table_rows_follow_paper_order():
    results = {"combined": result_for("combined"),
               "baseline": result_for("baseline"),
               "ppm": result_for("ppm")}
    rows = table1_rows(results)
    assert [r.label for r in rows] == ["baseline", "ppm", "combined"]


def test_render_table_includes_paper_reference():
    text = render_table1({"baseline": result_for("baseline")})
    assert "Table 1" in text
    assert "(paper)" in text
    assert "1782" in text          # the paper's baseline total


def test_render_table_without_paper():
    text = render_table1({"baseline": result_for("baseline")},
                         include_paper=False)
    assert "(paper)" not in text
