"""Unit tests for the ``.ckpt`` envelope and plain-tree validation."""

import numpy as np
import pytest

from repro.checkpoint import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
    tree_equal,
    validate_tree,
)
from repro.checkpoint.serialize import MAGIC, dumps, loads


SAMPLE = {
    "format": "repro-checkpoint-v1",
    "nested": {"a": 1, "b": [1.5, "x", None, True]},
    "tuples": (1, (2, 3), "end"),
    "blob": b"\x00\xff",
    "array": np.arange(12, dtype=np.int64).reshape(3, 4),
}


def test_roundtrip_preserves_types(tmp_path):
    path = tmp_path / "t.ckpt"
    size = save_checkpoint(SAMPLE, path)
    assert size == path.stat().st_size
    tree = load_checkpoint(path)
    assert tree_equal(tree, SAMPLE)
    # tuples must come back as tuples, not lists
    assert isinstance(tree["tuples"], tuple)
    assert isinstance(tree["tuples"][1], tuple)
    assert tree["array"].dtype == np.int64


def test_validate_tree_normalises_numpy_scalars():
    tree = validate_tree({"i": np.int64(7), "f": np.float64(0.5),
                          "b": np.bool_(True)})
    assert type(tree["i"]) is int
    assert type(tree["f"]) is float
    assert type(tree["b"]) is bool


def test_validate_tree_rejects_non_plain_values():
    with pytest.raises(CheckpointError):
        validate_tree({"bad": object()})
    with pytest.raises(CheckpointError):
        validate_tree({"bad": {1: "non-string key"}})
    with pytest.raises(CheckpointError):
        validate_tree({"bad": lambda: None})


def test_validate_tree_copies_containers():
    arr = np.zeros(4)
    src = {"xs": [1, 2], "arr": arr}
    out = validate_tree(src)
    src["xs"].append(3)
    arr[0] = 9.0
    assert out["xs"] == [1, 2]
    assert out["arr"][0] == 0.0


def test_tampered_payload_fails_checksum(tmp_path):
    path = tmp_path / "t.ckpt"
    save_checkpoint(SAMPLE, path)
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0x01
    with pytest.raises(CheckpointError, match="checksum"):
        loads(bytes(blob))


def test_truncated_and_wrong_magic_are_clean_errors(tmp_path):
    blob = dumps({"format": "x"})
    with pytest.raises(CheckpointError, match="truncated"):
        loads(blob[:10])
    with pytest.raises(CheckpointError, match="truncated"):
        loads(blob[:-5])
    bad = b"NOTACKPT" + blob[len(MAGIC):]
    with pytest.raises(CheckpointError, match="magic"):
        loads(bad)


def test_newer_format_version_is_rejected():
    blob = bytearray(dumps({"format": "x"}))
    blob[8] = 0xFF  # bump the little-endian u16 version field
    with pytest.raises(CheckpointError, match="newer"):
        loads(bytes(blob))


def test_missing_file_is_checkpoint_error(tmp_path):
    with pytest.raises(CheckpointError, match="cannot read"):
        load_checkpoint(tmp_path / "nope.ckpt")


def test_save_is_atomic_no_tmp_left_behind(tmp_path):
    path = tmp_path / "t.ckpt"
    save_checkpoint(SAMPLE, path)
    save_checkpoint(SAMPLE, path)  # overwrite goes through the same dance
    assert [p.name for p in tmp_path.iterdir()] == ["t.ckpt"]


def test_tree_equal_distinguishes_shapes():
    assert tree_equal({"a": (1, 2)}, {"a": (1, 2)})
    assert not tree_equal({"a": (1, 2)}, {"a": [1, 2]})
    assert not tree_equal({"a": np.zeros(3)}, {"a": np.zeros(4)})
    assert tree_equal(np.zeros(3), np.zeros(3))
    assert not tree_equal(1, 1.0)
