"""Unit tests for the Barnes-Hut N-body kernel."""

import numpy as np
import pytest

from repro.apps.kernels import BarnesHutTree, direct_forces, tree_forces
from repro.apps.kernels.barnes_hut import interactions_estimate, leapfrog_step


def plummer_like(n, seed=0):
    rng = np.random.default_rng(seed)
    pos = rng.normal(size=(n, 3))
    mass = np.full(n, 1.0 / n)
    return pos, mass


def test_two_body_force_is_newtonian():
    pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
    mass = np.array([1.0, 1.0])
    acc = direct_forces(pos, mass, softening=0.0)
    assert acc[0] == pytest.approx([1.0, 0.0, 0.0])
    assert acc[1] == pytest.approx([-1.0, 0.0, 0.0])


def test_direct_forces_newtons_third_law():
    pos, mass = plummer_like(20)
    acc = direct_forces(pos, mass)
    momentum_rate = (mass[:, None] * acc).sum(axis=0)
    assert np.allclose(momentum_rate, 0.0, atol=1e-12)


def test_tree_matches_direct_within_theta_error():
    pos, mass = plummer_like(200, seed=1)
    direct = direct_forces(pos, mass)
    tree = tree_forces(pos, mass, theta=0.3)
    rel_err = np.linalg.norm(tree - direct, axis=1) / \
        (np.linalg.norm(direct, axis=1) + 1e-12)
    assert np.median(rel_err) < 0.02
    assert rel_err.mean() < 0.05


def test_smaller_theta_is_more_accurate():
    pos, mass = plummer_like(150, seed=2)
    direct = direct_forces(pos, mass)

    def err(theta):
        tree = tree_forces(pos, mass, theta=theta)
        return np.linalg.norm(tree - direct) / np.linalg.norm(direct)

    assert err(0.2) < err(0.9)


def test_tree_mass_accounting():
    pos, mass = plummer_like(100, seed=3)
    tree = BarnesHutTree(pos, mass)
    assert tree.root.mass == pytest.approx(mass.sum())
    com = (pos * mass[:, None]).sum(axis=0) / mass.sum()
    assert np.allclose(tree.root.com, com)


def test_tree_node_count_is_linearish():
    pos, mass = plummer_like(500, seed=4)
    tree = BarnesHutTree(pos, mass)
    assert 500 < tree.nodes_built < 500 * 10


def test_single_particle_tree():
    tree = BarnesHutTree(np.zeros((1, 3)), np.ones(1))
    assert np.allclose(tree.acceleration_on(0), 0.0)


def test_input_validation():
    with pytest.raises(ValueError):
        direct_forces(np.zeros((3, 2)), np.ones(3))
    with pytest.raises(ValueError):
        direct_forces(np.zeros((3, 3)), np.ones(4))
    with pytest.raises(ValueError):
        BarnesHutTree(np.zeros((0, 3)), np.zeros(0))
    with pytest.raises(ValueError):
        BarnesHutTree(np.zeros((2, 3)) + [[0, 0, 0], [1, 1, 1]],
                      np.ones(2), theta=0.0)
    with pytest.raises(ValueError):
        interactions_estimate(0)


def test_leapfrog_conserves_momentum_approximately():
    pos, mass = plummer_like(50, seed=5)
    vel = np.zeros_like(pos)
    p0 = (mass[:, None] * vel).sum(axis=0)
    pos2, vel2 = leapfrog_step(pos, vel, mass, dt=0.01, theta=0.4)
    p1 = (mass[:, None] * vel2).sum(axis=0)
    # theta-approximation breaks exact symmetry; drift must stay tiny
    assert np.linalg.norm(p1 - p0) < 1e-3


def test_interactions_estimate_grows_superlinearly():
    assert interactions_estimate(8192) > 10 * interactions_estimate(512)


def test_coincident_particles_rejected():
    pos = np.zeros((2, 3))
    with pytest.raises(RuntimeError):
        BarnesHutTree(pos, np.ones(2))
