"""Integration tests for the experiment runner (scaled-down cluster)."""

import numpy as np
import pytest

from repro.core import EXPERIMENTS, ExperimentRunner
from repro.core.sizes import dominant_size, size_histogram


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(nnodes=2, seed=1, baseline_duration=500.0)


@pytest.fixture(scope="module")
def baseline(runner):
    return runner.run("baseline")


@pytest.fixture(scope="module")
def combined(runner):
    return runner.run("combined")


def test_experiment_names_complete():
    assert EXPERIMENTS == ("baseline", "ppm", "wavelet", "nbody", "combined")


def test_unknown_experiment_rejected(runner):
    with pytest.raises(ValueError):
        runner.run("fortran")


def test_baseline_pure_writes_at_paper_rate(baseline):
    m = baseline.metrics
    assert m.write_pct >= 95
    assert 0.5 < m.requests_per_second < 1.5      # paper: 0.9/s
    assert dominant_size(baseline.trace) == 1.0


def test_baseline_trace_cut_to_duration(baseline):
    assert baseline.trace.duration <= baseline.duration
    assert baseline.trace.time.min() >= 0.0


def test_single_app_result_has_stats(runner):
    result = runner.run("ppm")
    assert result.name == "ppm"
    assert len(result.app_stats["ppm"]) == 2      # one per node
    for stats in result.app_stats["ppm"]:
        assert stats.duration > 100


def test_combined_runs_all_three(combined):
    assert set(combined.app_stats) == {"ppm", "wavelet", "nbody"}
    assert combined.nnodes == 2


def test_combined_duration_near_700s(combined):
    # paper: ~700 s for the multiprogrammed run
    assert 500 < combined.duration < 1100


def test_combined_has_32kb_requests(combined):
    # the scaled I/O buffering under multiprogramming
    hist = size_histogram(combined.trace)
    assert max(hist) == 32.0


def test_combined_busier_than_any_single(runner, combined):
    single = runner.run("wavelet")
    assert combined.metrics.requests_per_node > \
        single.metrics.requests_per_node


def test_both_nodes_traced(combined):
    assert set(combined.trace.nodes()) == {0, 1}


def test_runner_reproducible():
    a = ExperimentRunner(nnodes=1, seed=9, baseline_duration=200).run("baseline")
    b = ExperimentRunner(nnodes=1, seed=9, baseline_duration=200).run("baseline")
    assert len(a.trace) == len(b.trace)
    assert np.allclose(a.trace.time, b.trace.time)
    assert np.array_equal(a.trace.sector, b.trace.sector)


def test_hard_limit_enforced():
    runner = ExperimentRunner(nnodes=1, seed=1, hard_limit=5.0)
    with pytest.raises(RuntimeError, match="hard limit"):
        runner.run("ppm")


def test_run_rejects_duration_for_app_experiments(runner):
    for name in ("ppm", "wavelet", "nbody", "combined", "serial"):
        with pytest.raises(ValueError, match="duration"):
            runner.run(name, duration=100.0)


def test_run_baseline_duration_keyword():
    runner = ExperimentRunner(nnodes=1, seed=3, baseline_duration=500.0)
    result = runner.run("baseline", duration=60.0)
    assert result.duration == 60.0
    assert result.trace.duration <= 60.0


def test_removed_shims_point_at_run():
    # the PR-3 deprecation shims were retired: the old entry points are
    # gone, and the error tells stragglers exactly what to call instead
    runner = ExperimentRunner(nnodes=1, seed=1)
    for name in ("run_baseline", "run_single", "run_combined",
                 "run_serial"):
        with pytest.raises(AttributeError, match=r"removed; use .*run\("):
            getattr(runner, name)
    with pytest.raises(AttributeError, match="no attribute"):
        runner.run_backwards


def test_experiment_result_persistence_roundtrip(tmp_path, runner):
    result = runner.run("ppm")
    written = result.save(str(tmp_path / "ppm_run"))   # str path accepted
    assert written == tmp_path / "ppm_run"
    loaded = type(result).load(tmp_path / "ppm_run")
    assert loaded.name == "ppm"
    assert loaded.duration == result.duration
    assert loaded.nnodes == result.nnodes
    assert loaded.trace == result.trace
    assert len(loaded.app_stats["ppm"]) == 2
    assert loaded.app_stats["ppm"][0].duration == \
        result.app_stats["ppm"][0].duration
    # metrics recompute identically from the loaded artifact
    assert loaded.metrics.read_pct == result.metrics.read_pct


def test_experiment_result_load_rejects_foreign(tmp_path):
    import json
    from repro.core.experiments import ExperimentResult
    d = tmp_path / "x"
    d.mkdir()
    (d / "experiment.json").write_text(json.dumps({"format": "nope"}))
    with pytest.raises(ValueError):
        ExperimentResult.load(d)


def test_run_all_parallel_matches_serial():
    import numpy as np
    serial = ExperimentRunner(nnodes=1, seed=6,
                              baseline_duration=300.0).run_all()
    parallel = ExperimentRunner(nnodes=1, seed=6,
                                baseline_duration=300.0).run_all(
        parallel=True, max_workers=3)
    assert set(parallel) == set(serial)
    for name in serial:
        a, b = serial[name], parallel[name]
        assert len(a.trace) == len(b.trace), name
        assert np.array_equal(a.trace.sector, b.trace.sector), name
        assert a.metrics.read_pct == b.metrics.read_pct, name
