"""Unit tests for the Disk device process."""

import numpy as np
import pytest

from repro.disk import Disk, DiskGeometry, DiskServiceModel, FIFOScheduler, IORequest
from repro.sim import Simulator


def make_disk(sim, **kwargs):
    return Disk(sim, rng=np.random.default_rng(0), **kwargs)


def test_single_request_completes_with_positive_latency():
    sim = Simulator()
    disk = make_disk(sim)
    req = IORequest(sector=1000, nsectors=2, is_write=False)
    disk.submit(req)
    sim.run()
    assert req.complete_time is not None
    assert req.latency > 0
    assert disk.stats.reads == 1
    assert disk.stats.sectors_read == 2


def test_completion_event_carries_request():
    sim = Simulator()
    disk = make_disk(sim)
    seen = []

    def issuer(sim, disk):
        req = IORequest(sector=10, nsectors=2, is_write=True)
        done = disk.submit(req)
        result = yield done
        seen.append(result)

    sim.process(issuer(sim, disk))
    sim.run()
    assert len(seen) == 1 and seen[0].sector == 10
    assert disk.stats.writes == 1


def test_requests_serialize_on_single_actuator():
    sim = Simulator()
    disk = make_disk(sim, scheduler=FIFOScheduler())
    reqs = [IORequest(sector=s, nsectors=2, is_write=False)
            for s in (100, 200_000, 400_000)]
    for r in reqs:
        disk.submit(r)
    sim.run()
    times = [r.complete_time for r in reqs]
    assert times == sorted(times)
    assert len(set(times)) == 3  # strictly serialized


def test_queue_depth_counts_waiting_and_in_service():
    sim = Simulator()
    disk = make_disk(sim)
    for s in (100, 200, 300):
        disk.submit(IORequest(sector=s, nsectors=2, is_write=False))
    assert disk.queue_depth == 3
    sim.run()
    assert disk.queue_depth == 0
    assert disk.stats.max_queue_depth == 3


def test_request_beyond_disk_end_rejected():
    sim = Simulator()
    disk = make_disk(sim)
    with pytest.raises(ValueError):
        disk.submit(IORequest(sector=disk.total_sectors - 1, nsectors=2,
                              is_write=False))


def test_head_position_follows_service():
    sim = Simulator()
    disk = make_disk(sim)
    target = 600_000
    disk.submit(IORequest(sector=target, nsectors=2, is_write=False))
    sim.run()
    assert disk.head_cylinder == disk.service.geometry.cylinder_of(target + 1)


def test_elevator_orders_service_by_sector():
    sim = Simulator()
    disk = make_disk(sim)  # default C-LOOK
    order = []

    def issue_all(sim, disk):
        reqs = [IORequest(sector=s, nsectors=2, is_write=False)
                for s in (900_000, 5_000, 400_000)]
        events = [disk.submit(r) for r in reqs]
        for r, ev in zip(reqs, events):
            ev.callbacks.append(lambda _e, r=r: order.append(r.sector))
        yield sim.timeout(0)

    sim.process(issue_all(sim, disk))
    sim.run()
    # Head starts at 0 -> single upward sweep.
    assert order == [5_000, 400_000, 900_000]


def test_larger_requests_take_longer():
    def one(nsectors):
        sim = Simulator()
        service = DiskServiceModel(geometry=DiskGeometry())
        disk = Disk(sim, service=service, rng=np.random.default_rng(7))
        req = IORequest(sector=0, nsectors=nsectors, is_write=False)
        disk.submit(req)
        sim.run()
        return req.latency

    assert one(64) > one(2)


def test_busy_time_and_mean_latency_accumulate():
    sim = Simulator()
    disk = make_disk(sim)
    for s in (100, 200):
        disk.submit(IORequest(sector=s, nsectors=2, is_write=True))
    sim.run()
    assert disk.stats.busy_time > 0
    assert disk.stats.mean_latency > 0
    assert disk.stats.latency_percentile(50) > 0


def test_disk_idles_then_accepts_new_work():
    sim = Simulator()
    disk = make_disk(sim)

    def late_issuer(sim, disk):
        yield sim.timeout(10.0)
        req = IORequest(sector=100, nsectors=2, is_write=False)
        yield disk.submit(req)
        assert sim.now > 10.0

    sim.process(late_issuer(sim, disk))
    sim.run()
    assert disk.stats.requests == 1


# -- bounded latency reservoir ------------------------------------------------
def test_reservoir_exact_below_capacity():
    from repro.disk import LatencyReservoir
    reservoir = LatencyReservoir(capacity=100)
    values = list(np.random.default_rng(0).normal(10.0, 2.0, size=80))
    for v in values:
        reservoir.append(v)
    assert reservoir.count == 80
    assert len(reservoir) == 80
    assert reservoir.percentile(50) == float(np.percentile(values, 50))
    assert reservoir.percentile(95) == float(np.percentile(values, 95))


def test_reservoir_bounds_memory_and_stays_accurate():
    """Satellite fix: DiskStats latencies no longer grow without bound.

    150k lognormal observations through an 8192-slot reservoir: memory
    stays at capacity while percentile estimates land within a few
    percent of the exact values.
    """
    from repro.disk import LatencyReservoir
    reservoir = LatencyReservoir(capacity=8192)
    values = np.random.default_rng(42).lognormal(mean=-3.0, sigma=0.8,
                                                 size=150_000)
    for v in values:
        reservoir.append(float(v))
    assert reservoir.count == 150_000
    assert len(reservoir) == 8192          # bounded, not 150k
    for q in (10, 50, 90, 99):
        exact = float(np.percentile(values, q))
        estimate = reservoir.percentile(q)
        assert abs(estimate - exact) / exact < 0.10, (q, estimate, exact)


def test_reservoir_sampling_is_deterministic():
    from repro.disk import LatencyReservoir
    a, b = LatencyReservoir(capacity=16), LatencyReservoir(capacity=16)
    for v in range(1000):
        a.append(float(v))
        b.append(float(v))
    assert list(a) == list(b)


def test_disk_stats_latencies_bounded_and_means_exact():
    """The device's accounting path feeds the reservoir; totals stay
    exact sums even when the sample is clipped."""
    from repro.disk import LatencyReservoir
    sim = Simulator()
    disk = make_disk(sim)
    disk.stats._latencies = LatencyReservoir(capacity=8)

    def issuer():
        for i in range(50):
            done = disk.submit(IORequest(sector=(i * 977) % 10_000,
                                         nsectors=2, is_write=True))
            yield done

    sim.process(issuer())
    sim.run()
    assert disk.stats.requests == 50
    assert disk.stats._latencies.count == 50
    assert len(disk.stats._latencies) == 8
    assert disk.stats.mean_latency == pytest.approx(
        disk.stats.total_latency / 50)
    assert disk.stats.latency_percentile(50) > 0
