"""The API-doc generator runs and covers the public surface."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def test_gen_api_docs(tmp_path):
    out = tmp_path / "API.md"
    subprocess.run([sys.executable, str(REPO / "tools" / "gen_api_docs.py"),
                    str(out)], check=True, cwd=REPO)
    text = out.read_text()
    for symbol in ("Simulator", "Disk", "InstrumentedIDEDriver",
                   "NodeKernel", "BeowulfCluster", "WaveletApplication",
                   "ExperimentRunner", "WorkloadModel", "TraceDataset",
                   "TraceWriter", "TraceReader", "RunCatalog"):
        assert symbol in text, symbol
    # every subpackage is documented
    for package in ("repro.sim", "repro.disk", "repro.driver",
                    "repro.kernel", "repro.cluster", "repro.apps",
                    "repro.core", "repro.synth", "repro.store",
                    "repro.viz"):
        assert f"## `{package}`" in text, package
