"""Tests for the kswapd-style background reclaimer."""

import numpy as np
import pytest

from repro.disk import Disk
from repro.driver import InstrumentedIDEDriver, ProcTraceTransport
from repro.kernel import VirtualMemory
from repro.sim import Simulator


def make_vm(sim, frames=100):
    disk = Disk(sim, rng=np.random.default_rng(0))
    transport = ProcTraceTransport(sim)
    driver = InstrumentedIDEDriver(sim, disk, transport=transport)
    return VirtualMemory(driver, frames_total=frames, page_kb=4)


def test_reclaimer_maintains_free_pool():
    sim = Simulator()
    vm = make_vm(sim, frames=100)
    vm.attach_reclaimer(sim, low_fraction=0.05, high_fraction=0.10)
    aspace = vm.create_space("app")

    def workload():
        for page in range(100):
            yield from vm.access(aspace, page, write=True)
        # give kswapd time to run after the pool filled
        yield sim.timeout(10.0)

    sim.process(workload())
    sim.run(until=60.0)
    vm.stop_reclaimer()
    assert vm.frames_free >= 10                    # back above high mark
    assert vm.stats.background_evictions > 0


def test_reclaimer_reduces_direct_reclaims():
    def run(with_reclaimer):
        sim = Simulator()
        vm = make_vm(sim, frames=64)
        if with_reclaimer:
            vm.attach_reclaimer(sim, low_fraction=0.1, high_fraction=0.3)
        aspace = vm.create_space("app")
        rng = np.random.default_rng(1)

        def workload():
            for _ in range(400):
                page = int(rng.integers(0, 128))
                yield from vm.access(aspace, page, write=True)
                yield sim.timeout(0.05)   # time for kswapd to keep up

        sim.process(workload())
        sim.run(until=120.0)
        vm.stop_reclaimer()
        return vm.stats

    without = run(False)
    with_k = run(True)
    assert without.direct_reclaims > 0
    assert with_k.direct_reclaims < without.direct_reclaims


def test_fault_with_empty_pool_still_direct_reclaims():
    sim = Simulator()
    vm = make_vm(sim, frames=4)
    vm.attach_reclaimer(sim, low_fraction=0.2, high_fraction=0.5)
    aspace = vm.create_space("app")

    def burst():
        # back-to-back faults give kswapd no time to run
        for page in range(12):
            yield from vm.access(aspace, page, write=True)

    sim.process(burst())
    sim.run(until=30.0)
    vm.stop_reclaimer()
    assert vm.stats.direct_reclaims > 0
    assert vm.frames_used <= 4


def test_reclaimer_validation():
    sim = Simulator()
    vm = make_vm(sim)
    with pytest.raises(ValueError):
        vm.attach_reclaimer(sim, low_fraction=0.5, high_fraction=0.2)
    vm.attach_reclaimer(sim)
    with pytest.raises(RuntimeError):
        vm.attach_reclaimer(sim)
    vm.stop_reclaimer()


def test_reclaimer_idle_does_not_block_simulation_end():
    sim = Simulator()
    vm = make_vm(sim)
    vm.attach_reclaimer(sim)
    sim.run(until=5.0)
    vm.stop_reclaimer()
    sim.run()   # heap drains; no hang
    assert sim.now >= 5.0
