"""The durable job store: lifecycle, atomicity, crash recovery."""

import json
import os
import subprocess
import sys

import pytest

from repro.serve import (
    ACTIVE_STATES,
    Job,
    JobError,
    JobStore,
    STATES,
    TERMINAL_STATES,
    render_jobs_table,
)


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "jobs")


def test_states_partition():
    assert set(STATES) == set(ACTIVE_STATES) | set(TERMINAL_STATES)


def test_create_persists_queued_job(store):
    job = store.create("experiment", {"experiment": "baseline"})
    assert job.id == "job-000001"
    assert job.state == "queued"
    assert job.created > 0
    on_disk = store.load(job.id)
    assert on_disk.to_dict() == job.to_dict()
    data = json.loads((store.root / "job-000001.json").read_text())
    assert data["format"] == "repro-serve-job-v1"


def test_create_ids_are_unique_and_monotonic(store):
    ids = [store.create("experiment").id for _ in range(3)]
    assert ids == ["job-000001", "job-000002", "job-000003"]
    # a second store on the same directory continues, never collides
    other = JobStore(store.root)
    assert other.create("sweep").id == "job-000004"


def test_create_rejects_unknown_kind(store):
    with pytest.raises(JobError):
        store.create("banana")


def test_load_unknown_job_raises(store):
    with pytest.raises(JobError, match="no job"):
        store.load("job-999999")
    with pytest.raises(JobError, match="bad job id"):
        store.load("../escape")


def test_save_is_atomic_rename(store):
    job = store.create("experiment")
    store.save(job)
    # no temp litter left behind
    assert [p.name for p in store.root.iterdir()] == ["job-000001.json"]


def test_lifecycle_transitions(store):
    job = store.create("experiment")
    job = store.transition(job.id, "running", pid=os.getpid())
    assert job.state == "running"
    assert job.started is not None
    job = store.transition(job.id, "finished", result={"ok": 1},
                           run_ids=["baseline"])
    assert job.finished is not None
    assert job.run_ids == ["baseline"]
    assert store.load(job.id).result == {"ok": 1}


def test_illegal_transitions_raise(store):
    job = store.create("experiment")
    with pytest.raises(JobError, match="cannot go"):
        store.transition(job.id, "finished")      # queued -> finished
    store.transition(job.id, "running")
    store.transition(job.id, "finished")
    for state in ("running", "cancelled", "queued"):
        with pytest.raises(JobError):
            store.transition(job.id, state)       # terminal is forever


def test_requeue_clears_worker_fields(store):
    job = store.create("experiment")
    store.transition(job.id, "running", pid=12345)
    job = store.transition(job.id, "queued")
    assert job.pid is None and job.started is None


def test_recover_requeues_orphaned_running_jobs(store):
    queued = store.create("experiment")
    orphan = store.create("experiment")
    alive = store.create("experiment")
    done = store.create("experiment")
    # a worker pid that no longer exists (a real, already-exited child)
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    store.transition(orphan.id, "running", pid=proc.pid)
    store.transition(alive.id, "running", pid=os.getpid())
    store.transition(done.id, "running")
    store.transition(done.id, "finished")

    ready = store.recover()
    assert [j.id for j in ready] == [queued.id, orphan.id]
    assert store.load(orphan.id).state == "queued"
    assert store.load(alive.id).state == "running"   # its worker lives
    assert store.load(done.id).state == "finished"


def test_counts_zero_filled(store):
    store.create("experiment")
    job = store.create("sweep")
    store.transition(job.id, "running")
    counts = store.counts()
    assert counts == {"queued": 1, "running": 1, "finished": 0,
                      "failed": 0, "cancelled": 0, "blocked": 0}


def test_priority_deps_tenant_persist(store):
    first = store.create("experiment")
    job = store.create("experiment", priority=7,
                       depends_on=[first.id], tenant="team-a")
    on_disk = store.load(job.id)
    assert on_disk.priority == 7
    assert on_disk.depends_on == [first.id]
    assert on_disk.tenant == "team-a"
    data = json.loads((store.root / f"{job.id}.json").read_text())
    assert data["priority"] == 7 and data["depends_on"] == [first.id]


def test_create_rejects_unknown_dependency(store):
    with pytest.raises(JobError, match="unknown dependency"):
        store.create("experiment", depends_on=["job-999999"])


def test_job_round_trip_rejects_garbage():
    with pytest.raises(JobError):
        Job.from_dict({"format": "something-else", "id": "x", "kind": "y"})
    with pytest.raises(JobError, match="unknown state"):
        Job.from_dict({"id": "job-000001", "kind": "experiment",
                       "state": "zombie"})


def test_render_jobs_table(store):
    store.create("experiment", {"experiment": "baseline"})
    sweep = store.create("sweep", {"experiment": "wavelet",
                                   "grid": ["scheduler=clook,fifo"]})
    store.transition(sweep.id, "running")
    store.transition(sweep.id, "failed", error="boom")
    table = render_jobs_table(store.jobs())
    lines = table.splitlines()
    assert lines[0].split() == ["job", "kind", "experiment", "state",
                                "pri", "deps", "runs", "info"]
    assert "job-000001" in lines[2] and "queued" in lines[2]
    assert "wavelet x 1 axis" in lines[3]
    assert "failed" in lines[3] and "boom" in lines[3]
    assert render_jobs_table([]) == "no jobs"
