"""Unit and property tests for trace records and buffers."""

import numpy as np
from hypothesis import given, strategies as st

from repro.driver import TRACE_DTYPE, TraceBuffer, TraceRecord


def test_dtype_fields_match_paper_schema():
    names = set(TRACE_DTYPE.names)
    # timestamp, sector, rw flag, pending count are the paper's fields
    assert {"time", "sector", "write", "pending"} <= names


def test_append_and_len():
    buf = TraceBuffer(initial_capacity=2)
    for i in range(5):  # forces growth past initial capacity
        buf.append(TraceRecord(time=float(i), sector=i * 10, write=bool(i % 2),
                               pending=i, size_kb=1.0))
    assert len(buf) == 5
    arr = buf.to_array()
    assert arr.dtype == TRACE_DTYPE
    assert list(arr["sector"]) == [0, 10, 20, 30, 40]
    assert list(arr["write"]) == [0, 1, 0, 1, 0]


def test_to_array_is_a_copy():
    buf = TraceBuffer()
    buf.append(TraceRecord(1.0, 2, True, 3, 1.0))
    arr = buf.to_array()
    arr["sector"][0] = 999
    assert buf.to_array()["sector"][0] == 2


def test_iteration_roundtrips_records():
    buf = TraceBuffer()
    rec = TraceRecord(time=1.5, sector=42, write=True, pending=3,
                      size_kb=4.0, node=7)
    buf.append(rec)
    out = list(buf)[0]
    assert out == rec


def test_clear_resets():
    buf = TraceBuffer()
    buf.append(TraceRecord(1.0, 2, False, 0, 1.0))
    buf.clear()
    assert len(buf) == 0
    assert buf.to_array().shape == (0,)


def test_extend():
    buf = TraceBuffer()
    buf.extend(TraceRecord(float(i), i, False, 0, 1.0) for i in range(3))
    assert len(buf) == 3


def test_append_array_bulk():
    arr = np.zeros(5, dtype=TRACE_DTYPE)
    arr["time"] = np.arange(5.0)
    arr["sector"] = np.arange(5) * 100
    buf = TraceBuffer(initial_capacity=2)  # forces growth
    buf.append_array(arr)
    buf.append_array(arr)
    out = buf.to_array()
    assert len(out) == 10
    assert np.array_equal(out[:5], arr)
    assert np.array_equal(out[5:], arr)


def test_append_array_empty_and_wrong_dtype():
    buf = TraceBuffer()
    buf.append_array(np.zeros(0, dtype=TRACE_DTYPE))
    assert len(buf) == 0
    import pytest
    with pytest.raises(TypeError):
        buf.append_array(np.zeros(3, dtype=np.float64))


def test_extend_accepts_arrays_and_mixes_with_append():
    arr = np.zeros(3, dtype=TRACE_DTYPE)
    arr["sector"] = [7, 8, 9]
    buf = TraceBuffer()
    buf.append(TraceRecord(0.0, 1, False, 0, 1.0))
    buf.extend(arr)
    buf.extend([TraceRecord(1.0, 10, True, 0, 1.0), (2.0, 11, 0, 0, 1.0, 0)])
    assert list(buf.to_array()["sector"]) == [1, 7, 8, 9, 10, 11]


@given(st.lists(st.tuples(
    st.floats(min_value=0, max_value=1e6, allow_nan=False),
    st.integers(min_value=0, max_value=2**40),
    st.booleans(),
    st.integers(min_value=0, max_value=60000),
), max_size=50))
def test_buffer_preserves_order_and_values(entries):
    buf = TraceBuffer(initial_capacity=1)
    for t, sector, write, pending in entries:
        buf.append(TraceRecord(t, sector, write, pending, 1.0))
    arr = buf.to_array()
    assert len(arr) == len(entries)
    for row, (t, sector, write, pending) in zip(arr, entries):
        assert row["sector"] == sector
        assert bool(row["write"]) == write
        assert row["pending"] == pending
