"""Unit tests for request-size classification."""

import pytest

from repro.core import RequestClass, TraceDataset, classify_sizes, size_histogram
from repro.core.sizes import (
    binned_max_size,
    class_fractions,
    dominant_size,
    max_size_kb,
    size_time_series,
)


def trace_of_sizes(sizes):
    return TraceDataset.from_records(
        [(float(i), i * 10, 0, 1, s, 0) for i, s in enumerate(sizes)])


def test_three_classes():
    ds = trace_of_sizes([1.0, 2.0, 4.0, 8.0, 16.0, 32.0])
    classes = classify_sizes(ds)
    assert list(classes) == [RequestClass.BLOCK, RequestClass.BLOCK,
                             RequestClass.PAGE, RequestClass.CACHE,
                             RequestClass.CACHE, RequestClass.CACHE]


def test_class_fractions_sum_to_one():
    ds = trace_of_sizes([1.0, 1.0, 4.0, 16.0])
    fractions = class_fractions(ds)
    assert sum(fractions.values()) == pytest.approx(1.0)
    assert fractions[RequestClass.BLOCK] == pytest.approx(0.5)
    assert fractions[RequestClass.PAGE] == pytest.approx(0.25)


def test_class_fractions_empty_trace():
    fractions = class_fractions(TraceDataset.empty())
    assert all(v == 0.0 for v in fractions.values())


def test_custom_page_size():
    ds = trace_of_sizes([8.0])
    assert classify_sizes(ds, page_kb=8.0)[0] == RequestClass.PAGE


def test_size_histogram():
    ds = trace_of_sizes([1.0, 1.0, 4.0])
    assert size_histogram(ds) == {1.0: 2, 4.0: 1}


def test_dominant_and_max():
    ds = trace_of_sizes([1.0, 1.0, 16.0])
    assert dominant_size(ds) == 1.0
    assert max_size_kb(ds) == 16.0
    with pytest.raises(ValueError):
        dominant_size(TraceDataset.empty())
    with pytest.raises(ValueError):
        max_size_kb(TraceDataset.empty())


def test_size_time_series_matches_records():
    ds = trace_of_sizes([1.0, 4.0])
    t, s = size_time_series(ds)
    assert list(t) == [0.0, 1.0]
    assert list(s) == [1.0, 4.0]


def test_binned_max_size():
    ds = TraceDataset.from_records([
        (1.0, 0, 0, 1, 1.0, 0),
        (5.0, 0, 0, 1, 16.0, 0),
        (25.0, 0, 0, 1, 4.0, 0),
    ])
    t, s = binned_max_size(ds, bin_seconds=10.0)
    assert list(t) == [5.0, 25.0]
    assert list(s) == [16.0, 4.0]


def test_binned_max_size_validation():
    with pytest.raises(ValueError):
        binned_max_size(TraceDataset.empty(), bin_seconds=0)
    t, s = binned_max_size(TraceDataset.empty())
    assert len(t) == 0
