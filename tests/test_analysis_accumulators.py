"""Unit tests for the streaming accumulator primitives.

The load-bearing property: updating over any partition of a record
stream and merging the partial states must equal one update over the
whole stream — that is what lets the analysis engine fan out across
chunks, nodes, and processes without changing results.
"""

import pickle

import numpy as np
import pytest

from repro.analysis import (
    BandCounts,
    BinnedCounts,
    Count,
    GapStats,
    Log2Histogram,
    MeanVar,
    MinMax,
    ReservoirSample,
    Sum,
    TopK,
    ValueCounts,
)
from repro.driver import TRACE_DTYPE


def make_records(n=1000, seed=0):
    rng = np.random.default_rng(seed)
    records = np.zeros(n, dtype=TRACE_DTYPE)
    records["time"] = np.sort(rng.uniform(0, 500, n))
    records["sector"] = rng.integers(0, 1_024_128, n)
    records["write"] = rng.random(n) < 0.8
    records["pending"] = rng.integers(1, 8, n)
    records["size_kb"] = rng.choice([0.5, 1.0, 2.0, 4.0, 32.0], n)
    records["node"] = rng.integers(0, 4, n)
    return records


def random_splits(records, pieces, seed):
    rng = np.random.default_rng(seed)
    cuts = np.sort(rng.integers(0, len(records), pieces - 1))
    return np.split(records, cuts)


def fold_split(factory, records, pieces=7, seed=1):
    """One accumulator per piece, merged pairwise left to right."""
    parts = []
    for piece in random_splits(records, pieces, seed):
        acc = factory()
        acc.update(piece)
        parts.append(acc)
    merged = parts[0]
    for acc in parts[1:]:
        merged.merge(acc)
    return merged


@pytest.mark.parametrize("factory,exact", [
    (Count, True),
    (lambda: Sum("size_kb"), True),
    (lambda: MinMax("time"), True),
    (lambda: ValueCounts("size_kb"), True),
    (lambda: TopK("sector", 5), True),
    (lambda: Log2Histogram("pending"), True),
    (lambda: BinnedCounts("time", 13, 0.0, 500.0), True),
    (lambda: BandCounts("sector", 100_000, 11), True),
    (lambda: MeanVar("size_kb"), False),
])
def test_split_merge_equals_whole(factory, exact):
    records = make_records()
    whole = factory()
    whole.update(records)
    for pieces, seed in ((2, 1), (7, 2), (25, 3)):
        split = fold_split(factory, records, pieces, seed)
        a, b = whole.result(), split.result()
        if isinstance(a, np.ndarray):
            assert np.array_equal(a, b)
        elif exact:
            assert a == b
        else:
            assert np.allclose(a, b)


def test_count_and_sum_values():
    records = make_records(100)
    c, s = Count(), Sum("size_kb")
    c.update(records)
    s.update(records)
    assert c.result() == 100
    assert s.result() == float(np.sum(records["size_kb"],
                                      dtype=np.float64))


def test_minmax_empty_and_typed():
    mm = MinMax("sector")
    assert mm.result() == (None, None)
    mm.update(make_records(10))
    lo, hi = mm.result()
    assert isinstance(lo, int) and isinstance(hi, int)
    ft = MinMax("time")
    ft.update(make_records(10))
    assert isinstance(ft.result()[0], float)


def test_meanvar_matches_numpy():
    records = make_records(512)
    mv = MeanVar("time")
    mv.update(records)
    times = records["time"].astype(np.float64)
    assert mv.mean == pytest.approx(times.mean(), rel=1e-12)
    assert mv.variance == pytest.approx(times.var(), rel=1e-12)
    assert mv.std == pytest.approx(times.std(), rel=1e-12)


def test_value_counts_exact():
    records = make_records(300)
    vc = ValueCounts("size_kb")
    vc.update(records)
    sizes, counts = np.unique(records["size_kb"], return_counts=True)
    assert vc.result() == {float(s): int(c) for s, c in zip(sizes, counts)}


def test_topk_ranking_and_ties():
    records = np.zeros(6, dtype=TRACE_DTYPE)
    records["sector"] = [5, 5, 5, 9, 9, 2]
    top = TopK("sector", 2)
    top.update(records)
    assert top.result() == [(5, 3), (9, 2)]


def test_log2_histogram_sentinels():
    records = np.zeros(3, dtype=TRACE_DTYPE)
    records["size_kb"] = [0.0, 1.0, 4.0]
    h = Log2Histogram("size_kb")
    h.update(records)
    # 0 -> sentinel; 1.0 -> exponent 1 (0.5 <= m < 1); 4.0 -> exponent 3
    assert h.result() == {-1024: 1, 1: 1, 3: 1}


def test_binned_counts_matches_numpy_and_rejects_mismatch():
    records = make_records(400)
    b = BinnedCounts("time", 10, 0.0, 500.0)
    b.update(records)
    expected = np.histogram(records["time"], bins=10, range=(0.0, 500.0))[0]
    assert np.array_equal(b.result(), expected)
    with pytest.raises(ValueError):
        b.merge(BinnedCounts("time", 11, 0.0, 500.0))


def test_band_counts_matches_bincount():
    records = make_records(400)
    bands = BandCounts("sector", 100_000, 11)
    bands.update(records)
    band_of = np.minimum(records["sector"] // 100_000, 10)
    assert np.array_equal(
        bands.result(),
        np.bincount(band_of.astype(np.int64), minlength=11))


def test_reservoir_bounded_and_deterministic():
    records = make_records(5000)
    a, b = ReservoirSample("sector", k=64, seed=3), \
        ReservoirSample("sector", k=64, seed=3)
    a.update(records)
    b.update(records)
    assert len(a.result()) == 64
    assert np.array_equal(a.result(), b.result())
    assert a.n == 5000
    # merged reservoirs still cap at k and count the union
    c = ReservoirSample("sector", k=64, seed=4)
    c.update(make_records(1000, seed=9))
    a.merge(c)
    assert len(a.result()) == 64
    assert a.n == 6000


def test_gapstats_matches_diff_over_batches():
    records = make_records(600)
    times = records["time"].astype(np.float64)
    gs = GapStats()
    for chunk in np.array_split(times, 9):
        gs.update_values(chunk)
    gaps = np.diff(times)
    n, mean, std = gs.result()
    assert n == len(gaps)
    assert mean == pytest.approx(gaps.mean(), rel=1e-12)
    assert std == pytest.approx(gaps.std(), rel=1e-12)


def test_gapstats_merge_ordered_partials():
    times = np.sort(np.random.default_rng(5).uniform(0, 100, 400))
    whole = GapStats()
    whole.update_values(times)
    left, right = GapStats(), GapStats()
    left.update_values(times[:150])
    right.update_values(times[150:])
    left.merge(right)
    assert left.result()[0] == whole.result()[0]
    assert left.result()[1] == pytest.approx(whole.result()[1], rel=1e-12)
    assert left.result()[2] == pytest.approx(whole.result()[2], rel=1e-12)


def test_gapstats_rejects_disorder():
    gs = GapStats()
    gs.update_values(np.array([1.0, 2.0]))
    with pytest.raises(ValueError):
        gs.update_values(np.array([0.5]))
    other = GapStats()
    other.update_values(np.array([1.5, 3.0]))
    with pytest.raises(ValueError):
        gs.merge(other)


def test_accumulators_pickle_roundtrip():
    """Partial states must survive the trip through a worker process."""
    records = make_records(200)
    accs = [Count(), Sum("size_kb"), MinMax("time"), MeanVar("time"),
            ValueCounts("size_kb"), TopK("sector", 3),
            Log2Histogram("pending"), BinnedCounts("time", 5, 0.0, 500.0),
            BandCounts("sector", 100_000, 11),
            ReservoirSample("sector", k=16, seed=1), GapStats()]
    for acc in accs:
        acc.update(records)
        clone = pickle.loads(pickle.dumps(acc))
        a, b = acc.result(), clone.result()
        if isinstance(a, np.ndarray):
            assert np.array_equal(a, b)
        else:
            assert a == b
        # and the clone keeps accumulating (rng state restored, etc.)
        clone.update(records[:0])
