"""Observability end to end: recorder, runner, catalog, CLIs, reports."""

import json

import pytest

from repro.core import ExperimentRunner
from repro.obs import NULL_RECORDER, MetricsRegistry, ObsRecorder, \
    flatten_snapshot
from repro.store import RunCatalog


@pytest.fixture(scope="module")
def obs_result():
    """One small instrumented run shared across tests (acceptance run)."""
    runner = ExperimentRunner(nnodes=2, seed=1, obs=True)
    return runner.run("wavelet")


# -- recorder basics ----------------------------------------------------------
def test_recorder_defaults_to_live_registry():
    rec = ObsRecorder()
    assert rec.enabled
    assert isinstance(rec.registry, MetricsRegistry)
    assert rec.snapshot() == {}


def test_null_recorder_is_disabled_and_inert():
    assert not NULL_RECORDER.enabled
    NULL_RECORDER.collect_run(wall_seconds=1.0, sim_seconds=2.0)
    assert NULL_RECORDER.snapshot() == {}


# -- the acceptance criterion -------------------------------------------------
def test_instrumented_run_yields_nonzero_layer_metrics(obs_result):
    snap = obs_result.obs
    assert snap, "obs=True run produced no snapshot"
    flat = flatten_snapshot(snap)
    assert flat["sim.events_processed"] > 0
    assert sum(v for k, v in flat.items()
               if k.startswith("disk.reads{")) > 0
    assert flat["disk.service_seconds{hda0}.count"] > 0
    assert sum(v for k, v in flat.items()
               if k.startswith("cache.hits{")) > 0
    assert sum(v for k, v in flat.items()
               if k.startswith("trace.records_drained{")) > 0
    assert flat["run.sim_seconds"] > 0
    assert flat["run.wall_seconds"] > 0


def test_fabric_counters_harvested(sunk_obs_run):
    # nbody exchanges boundaries every step, so the Ethernet carried load
    _, result = sunk_obs_run
    flat = flatten_snapshot(result.obs)
    assert flat["net.messages"] > 0
    assert flat["net.frames{ch0}"] + flat["net.frames{ch1}"] == \
        flat["net.frames"]
    assert flat["net.bytes_carried"] > 0
    assert flat["pvm.sends"] > 0
    # every node reports its volume's fan-out; single-disk defaults map
    # one physical request per logical request
    assert flat["volume.logical_requests{0}"] > 0
    assert flat["volume.physical_requests{0}"] == \
        flat["volume.logical_requests{0}"]
    # no PIOUS service was built for this run, so no pious.* family
    assert not any(k.startswith("pious.") for k in flat)


def test_per_node_labels_cover_the_cluster(obs_result):
    flat = flatten_snapshot(obs_result.obs)
    for metric in ("disk.reads", "cache.hits", "driver.requests_issued"):
        labels = {k for k in flat if k.startswith(metric + "{")}
        assert labels == {f"{metric}{{0}}", f"{metric}{{1}}"}


def test_snapshot_survives_json_and_save_load(obs_result, tmp_path):
    json.dumps(obs_result.obs)  # must be plain data
    obs_result.save(tmp_path / "exp")
    from repro.core.experiments import ExperimentResult
    loaded = ExperimentResult.load(tmp_path / "exp")
    assert loaded.obs == obs_result.obs
    assert loaded.metrics.nnodes == 2


def test_obs_disabled_by_default():
    result = ExperimentRunner(nnodes=1, seed=1).run("nbody")
    assert result.obs is None


def test_simulation_metrics_are_deterministic(obs_result):
    again = ExperimentRunner(nnodes=2, seed=1, obs=True).run("wavelet")
    a = flatten_snapshot(obs_result.obs)
    b = flatten_snapshot(again.obs)
    skip = ("wall", "run.sim_seconds_per_wall_second")
    sim_rows_a = {k: v for k, v in a.items()
                  if not any(s in k for s in skip)}
    sim_rows_b = {k: v for k, v in b.items()
                  if not any(s in k for s in skip)}
    assert sim_rows_a == sim_rows_b


# -- catalog integration ------------------------------------------------------
@pytest.fixture(scope="module")
def sunk_obs_run(tmp_path_factory):
    root = tmp_path_factory.mktemp("obs-catalog") / "runs"
    runner = ExperimentRunner(nnodes=2, seed=2, sink=root, obs=True)
    result = runner.run("nbody")
    return root, result


def test_manifest_carries_obs_and_metrics(sunk_obs_run):
    root, result = sunk_obs_run
    catalog = RunCatalog(root)
    manifest = catalog.manifest("nbody")
    assert manifest["obs"] == result.obs
    assert manifest["metrics"]["nnodes"] == 2
    flat = flatten_snapshot(manifest["obs"])
    # store counters are harvested after the writers close, so the
    # spilled byte counts include the tail chunks
    assert flat["store.records_written{0}"] > 0
    assert flat["store.compressed_bytes{0}"] > 0


def test_catalog_obs_snapshot_and_metrics_helpers(sunk_obs_run):
    root, result = sunk_obs_run
    catalog = RunCatalog(root)
    assert catalog.obs_snapshot("nbody") == result.obs
    m = catalog.metrics("nbody")
    assert m.nnodes == 2
    assert m.total_requests == result.metrics.total_requests
    assert m.throughput_kb_per_s == pytest.approx(
        result.metrics.throughput_kb_per_s)


def test_catalog_obs_snapshot_missing_without_obs(tmp_path):
    root = tmp_path / "runs"
    ExperimentRunner(nnodes=1, seed=5, sink=root).run("nbody")
    assert RunCatalog(root).obs_snapshot("nbody") is None


# -- CLI integration ----------------------------------------------------------
def test_experiment_cli_obs_flag(capsys):
    from repro.cli import main
    rc = main(["nbody", "--nodes", "1", "--obs"])
    assert rc == 0
    captured = capsys.readouterr()
    assert "runtime metrics: nbody" in captured.out
    assert "sim.events_processed" in captured.out


def test_trace_cli_obs_dump_and_compare(sunk_obs_run, capsys):
    from repro.store.cli import main
    root, _ = sunk_obs_run
    run_dir = str(root / "nbody")
    assert main(["obs", run_dir]) == 0
    out = capsys.readouterr().out
    assert "disk.reads{0}" in out

    assert main(["obs", run_dir, run_dir, "--only", "sim."]) == 0
    out = capsys.readouterr().out
    assert "delta%" in out
    assert "disk.reads{0}" not in out

    assert main(["obs", run_dir, "--json"]) == 0
    parsed = json.loads(capsys.readouterr().out)
    assert "sim.events_processed" in parsed["nbody"]


def test_trace_cli_obs_rejects_run_without_obs(tmp_path, capsys):
    from repro.store.cli import main
    root = tmp_path / "runs"
    ExperimentRunner(nnodes=1, seed=5, sink=root).run("nbody")
    assert main(["obs", str(root / "nbody")]) == 1
    assert "without --obs" in capsys.readouterr().err


# -- report integration -------------------------------------------------------
def test_reports_render_runtime_metrics(obs_result):
    from repro.core import characterize
    from repro.core.html_report import build_html_report
    text = characterize(obs_result)
    assert "runtime metrics:" in text
    assert "sim.events_processed" in text
    html = build_html_report({"wavelet": obs_result})
    assert "Runtime metrics" in html
