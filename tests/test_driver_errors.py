"""Tests for media-error injection and driver retry behaviour."""

import numpy as np
import pytest

from repro.disk import Disk, IORequest
from repro.driver import InstrumentedIDEDriver, ProcTraceTransport
from repro.sim import Simulator


def rig(error_rate, seed=0, max_retries=4):
    sim = Simulator()
    disk = Disk(sim, rng=np.random.default_rng(seed),
                media_error_rate=error_rate)
    transport = ProcTraceTransport(sim)
    driver = InstrumentedIDEDriver(sim, disk, transport=transport,
                                   max_retries=max_retries)
    return sim, disk, transport, driver


def test_error_rate_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Disk(sim, media_error_rate=1.0)
    with pytest.raises(ValueError):
        Disk(sim, media_error_rate=-0.1)


def test_device_marks_failed_requests():
    sim, disk, _, _ = rig(error_rate=0.999)
    req = IORequest(sector=100, nsectors=2, is_write=False)
    disk.submit(req)
    sim.run()
    assert req.failed
    assert disk.stats.media_errors == 1


def test_no_errors_at_zero_rate():
    sim, disk, transport, driver = rig(error_rate=0.0)
    for s in range(0, 100, 4):
        driver.read_sectors(s, 2)
    sim.run(until=30.0)
    assert disk.stats.media_errors == 0
    assert driver.retries == 0


def test_driver_retries_until_success():
    # ~50% error rate: retries almost always recover within 4 attempts
    sim, disk, transport, driver = rig(error_rate=0.5, seed=1)
    results = []

    def app():
        for s in (100, 5000, 9000, 20_000):
            req = yield driver.read_sectors(s, 2)
            results.append(req.failed)

    sim.process(app())
    sim.run(until=60.0)
    assert results == [False, False, False, False]
    assert driver.retries > 0
    assert driver.hard_failures == 0


def test_each_retry_is_traced():
    sim, disk, transport, driver = rig(error_rate=0.5, seed=1)

    def app():
        yield driver.read_sectors(100, 2)

    sim.process(app())
    sim.run(until=30.0)
    transport.drain_now()
    arr = transport.user_buffer.to_array()
    # the trace shows one record per attempt: issued = 1 + retries
    assert len(arr) == 1 + driver.retries
    assert (arr["sector"] == 100).all()


def test_unrecoverable_error_raises_in_caller():
    sim, disk, transport, driver = rig(error_rate=0.98, seed=2,
                                       max_retries=2)
    caught = []

    def app():
        try:
            yield driver.read_sectors(100, 2)
        except IOError as exc:
            caught.append(str(exc))

    sim.process(app())
    sim.run(until=60.0)
    assert caught and "unrecoverable" in caught[0]
    assert driver.hard_failures == 1


def test_retry_costs_simulated_time():
    def completion_time(error_rate, seed):
        sim, disk, transport, driver = rig(error_rate=error_rate, seed=seed)
        box = {}

        def app():
            yield driver.read_sectors(500_000, 2)
            box["t"] = sim.now

        sim.process(app())
        sim.run(until=60.0)
        return box["t"]

    clean = completion_time(0.0, seed=3)
    # moderate error rate so retries recover within the limit
    flaky = completion_time(0.5, seed=3)
    assert flaky > clean
