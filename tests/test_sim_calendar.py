"""Engine-equivalence tests: calendar queue vs binary heap.

The calendar engine is only allowed to be *faster* — every observable
(firing order, clock values, ``until``/``stop`` semantics, errors) must
match the heap engine exactly.  The property tests drive both engines
with the same randomized schedules, including callbacks that enqueue
more work mid-run (the same-window insort path) and populations large
enough to force calendar rebuilds.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import (
    EVENT_QUEUES,
    QUEUE_KINDS,
    BatchedDraws,
    CalendarSimulator,
    SimulationError,
    Simulator,
)


# -- engine selection ---------------------------------------------------------
def test_registry_lists_both_engines():
    assert set(QUEUE_KINDS) == {"calendar", "heap"}
    assert set(EVENT_QUEUES) == {"calendar", "heap"}


def test_default_engine_is_calendar():
    assert isinstance(Simulator(), CalendarSimulator)
    assert Simulator().queue_kind == "calendar"


def test_engine_selected_by_name():
    assert Simulator(queue="heap").queue_kind == "heap"
    assert Simulator(queue="calendar").queue_kind == "calendar"
    assert Simulator(queue=None).queue_kind == "calendar"


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown event queue"):
        Simulator(queue="fibheap")


# -- firing-order equivalence -------------------------------------------------
def _firing_order(kind, delays, nested=()):
    """Drive one engine with ``delays`` (+ per-callback ``nested``
    enqueues at fire time) and return [(now, tag), ...] in fire order."""
    sim = Simulator(queue=kind)
    log = []

    def fire(tag):
        log.append((sim.now, tag))
        for extra_delay, extra_tag in nested.get(tag, ()):
            sim.schedule_callback(extra_delay,
                                  lambda t=extra_tag: log.append((sim.now, t)))

    for i, delay in enumerate(delays):
        sim.schedule_callback(delay, lambda i=i: fire(i))
    sim.run()
    return log


# delays drawn from a small grid so ties (same timestamp, insertion
# order must break them) occur constantly
_delay = st.floats(min_value=0.0, max_value=50.0,
                   allow_nan=False, allow_infinity=False)
_tied_delay = st.sampled_from([0.0, 0.5, 1.0, 1.0, 2.5, 7.0, 7.0, 40.0])


@settings(max_examples=60, deadline=None)
@given(st.lists(st.one_of(_delay, _tied_delay), min_size=0, max_size=80),
       st.data())
def test_calendar_and_heap_fire_identically(delays, data):
    # a random subset of callbacks schedules follow-up work when it
    # fires — covering enqueues into the window currently draining
    nested = {}
    for i in range(len(delays)):
        if data.draw(st.booleans(), label=f"nest[{i}]"):
            extra = data.draw(st.sampled_from([0.0, 0.001, 1.0, 30.0]),
                              label=f"extra[{i}]")
            nested[i] = ((extra, ("n", i)),)
    heap = _firing_order("heap", delays, nested)
    calendar = _firing_order("calendar", delays, nested)
    assert calendar == heap


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_process_interleavings_identical(seed):
    # processes exercise URGENT resumption events (which must overtake
    # NORMAL events at the same timestamp on both engines)
    def run(kind):
        sim = Simulator(queue=kind)
        rng = np.random.default_rng(seed)
        log = []

        def worker(name):
            for _ in range(5):
                yield sim.timeout(float(rng.random()) * 3.0)
                log.append((sim.now, name))

        for name in "abcd":
            sim.process(worker(name), name=name)
        sim.run()
        return log, sim.now

    assert run("calendar") == run("heap")


def test_resize_stress_identical_order():
    # 30k events through 16 initial buckets: forces the deferred grow
    # rebuild (and the sorted-drain re-merge) several times over
    rng = np.random.default_rng(123)
    delays = (rng.random(30_000) * 200.0).tolist()

    def run(kind):
        sim = Simulator(queue=kind)
        order = []
        for i, d in enumerate(delays):
            sim.schedule_callback(d, lambda i=i: order.append(i))
        sim.run()
        return order, sim.now

    assert run("calendar") == run("heap")


def test_sparse_then_dense_schedule():
    # huge idle gap (sparse-jump path) followed by a dense burst
    def run(kind):
        sim = Simulator(queue=kind)
        order = []
        sim.schedule_callback(1e6, lambda: order.append("far"))
        for i in range(50):
            sim.schedule_callback(0.01 * i, lambda i=i: order.append(i))
        sim.run()
        return order, sim.now

    assert run("calendar") == run("heap")


# -- step()/peek()/run() edge cases on both engines ---------------------------
@pytest.mark.parametrize("kind", QUEUE_KINDS)
def test_step_on_empty_queue_raises_simulation_error(kind):
    sim = Simulator(queue=kind)
    with pytest.raises(SimulationError, match="empty event queue"):
        sim.step()


@pytest.mark.parametrize("kind", QUEUE_KINDS)
def test_step_after_drain_raises(kind):
    sim = Simulator(queue=kind)
    sim.schedule_callback(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError, match="empty event queue"):
        sim.step()


@pytest.mark.parametrize("kind", QUEUE_KINDS)
def test_peek_on_empty_queue_is_inf(kind):
    assert Simulator(queue=kind).peek() == float("inf")


@pytest.mark.parametrize("kind", QUEUE_KINDS)
def test_run_until_stops_clock_exactly(kind):
    sim = Simulator(queue=kind)
    fired = []

    def ticker(sim):
        while True:
            yield sim.timeout(1.0)
            fired.append(sim.now)

    sim.process(ticker(sim))
    sim.run(until=5.5)
    assert sim.now == 5.5
    assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]
    # resumable: the pending tick is still queued
    sim.run(until=6.5)
    assert fired[-1] == 6.0


@pytest.mark.parametrize("kind", QUEUE_KINDS)
def test_run_until_on_empty_queue_advances_clock(kind):
    sim = Simulator(queue=kind)
    sim.run(until=3.0)
    assert sim.now == 3.0
    with pytest.raises(ValueError):
        sim.run(until=1.0)


@pytest.mark.parametrize("kind", QUEUE_KINDS)
def test_run_until_boundary_event_fires(kind):
    sim = Simulator(queue=kind)
    fired = []
    sim.schedule_callback(5.0, lambda: fired.append(sim.now))
    sim.schedule_callback(5.0 + 1e-9, lambda: fired.append("late"))
    sim.run(until=5.0)
    # an event exactly at the deadline fires; anything past it waits
    assert fired == [5.0]
    assert sim.now == 5.0


@pytest.mark.parametrize("kind", QUEUE_KINDS)
def test_run_stop_event_halts_both_engines(kind):
    sim = Simulator(queue=kind)
    fired = []

    def worker(sim):
        yield sim.timeout(2.0)
        fired.append("stopper")

    proc = sim.process(worker(sim))
    for d in (1.0, 3.0, 4.0):
        sim.schedule_callback(d, lambda d=d: fired.append(d))
    sim.run(stop=proc)
    # checked once per event: the 1.0 and 2.0 events ran, 3.0+ did not
    assert fired == [1.0, "stopper"]
    sim.run()
    assert fired == [1.0, "stopper", 3.0, 4.0]


@pytest.mark.parametrize("kind", QUEUE_KINDS)
def test_double_schedule_rejected(kind):
    sim = Simulator(queue=kind)
    ev = sim.event()
    ev.succeed(delay=1.0)
    with pytest.raises(SimulationError):
        ev.succeed(delay=2.0)


@pytest.mark.parametrize("kind", QUEUE_KINDS)
def test_instrumented_run_counts_events(kind):
    from repro.obs import MetricsRegistry
    registry = MetricsRegistry()
    sim = Simulator(obs=registry, queue=kind)
    for d in (1.0, 2.0, 3.0):
        sim.schedule_callback(d, lambda: None)
    sim.run()
    assert registry.counter("sim.events_processed").value == 3


# -- batched RNG draws --------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31 - 1),
       st.integers(min_value=1, max_value=700))
def test_batched_draws_match_scalar_stream(seed, n):
    # promised by the BatchedDraws docstring: prefetching blocks yields
    # the exact value sequence of per-call rng.random()
    scalar = np.random.default_rng(seed)
    batched = BatchedDraws(np.random.default_rng(seed))
    expected = [float(scalar.random()) for _ in range(n)]
    got = [float(batched.random()) for _ in range(n)]
    assert got == expected
