"""The ``repro-serve`` command-line client against a live daemon."""

import json

import pytest

from repro.config import Scenario
from repro.serve import ExperimentService, ServeClient
from repro.serve.cli import main

SCENARIO = Scenario().with_overrides(
    {"cluster.nnodes": 2, "seed": 11}).to_dict()


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    service = ExperimentService(tmp_path_factory.mktemp("serve-cli"),
                                workers=1).start()
    yield service
    service.shutdown()


@pytest.fixture(scope="module")
def scenario_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("scn") / "small.toml"
    Scenario.from_dict(SCENARIO).save(path)
    return path


@pytest.fixture(scope="module")
def finished_job(service):
    # one real run every CLI test below shares
    client = ServeClient(service.url)
    job = client.submit(scenario=SCENARIO, duration=80.0)
    final = client.wait(job["id"], timeout=120)
    assert final["state"] == "finished"
    return final["id"]


def test_submit_wait_reports_run_ids(service, scenario_file,
                                     finished_job, capsys):
    code = main(["submit", "--url", service.url,
                 "--scenario", str(scenario_file),
                 "--duration", "80", "--wait"])
    out = capsys.readouterr().out
    assert code == 0
    lines = out.strip().splitlines()
    assert "queued (experiment: baseline)" in lines[0]
    assert "finished -> baseline-" in lines[-1]   # deduped run id


def test_submit_wait_streams_progress_to_stderr(service, scenario_file,
                                                finished_job, capsys):
    code = main(["submit", "--url", service.url,
                 "--scenario", str(scenario_file),
                 "--duration", "80", "--priority", "3",
                 "--after", finished_job, "--wait"])
    captured = capsys.readouterr()
    assert code == 0
    assert f"after {finished_job}" in captured.out.splitlines()[0]
    # the live event stream renders on stderr, one line per event
    assert "queued" in captured.err
    assert "point 1/1 done: baseline ->" in captured.err
    assert "finished ->" in captured.err


def test_events_subcommand_replays_history(service, finished_job,
                                           capsys):
    assert main(["events", "--url", service.url, finished_job]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert lines[0].split(None, 1) == ["1", "queued"]
    assert any("point 1/1 done" in line for line in lines)
    assert "finished -> baseline" in lines[-1]

    assert main(["events", "--url", service.url, finished_job,
                 "--json", "--after", "1"]) == 0
    records = [json.loads(line) for line in
               capsys.readouterr().out.strip().splitlines()]
    assert records[0]["id"] == 2
    assert records[-1]["event"] == "finished"


def test_unknown_job_is_user_error_rc2(service, capsys):
    assert main(["status", "--url", service.url, "job-999999"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("repro-serve: error:") and "404" in err


def test_dependency_on_unknown_job_rc2(service, capsys):
    assert main(["submit", "--url", service.url, "--duration", "50",
                 "--after", "job-999999"]) == 2
    assert "unknown dependency" in capsys.readouterr().err


def test_status_table(service, finished_job, capsys):
    assert main(["status", "--url", service.url]) == 0
    out = capsys.readouterr().out
    assert out.splitlines()[0].split()[:2] == ["job", "kind"]
    assert finished_job in out and "finished" in out


def test_status_single_job_json(service, finished_job, capsys):
    assert main(["status", "--url", service.url, finished_job,
                 "--json"]) == 0
    job = json.loads(capsys.readouterr().out)
    assert job["id"] == finished_job
    assert job["state"] == "finished"
    assert job["run_ids"] == ["baseline"]


def test_runs_listing(service, finished_job, capsys):
    assert main(["runs", "--url", service.url]) == 0
    out = capsys.readouterr().out
    assert "baseline" in out and "default" in out


def test_analyze_pretty_and_json(service, finished_job, capsys):
    assert main(["analyze", "--url", service.url, "baseline"]) == 0
    pretty = capsys.readouterr().out
    assert "baseline · metrics" in pretty and "fresh" in pretty

    assert main(["analyze", "--url", service.url, "baseline",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["pipeline"] == "metrics"
    assert payload["result"]["total_requests"] > 0


def test_client_revalidates_304(service, finished_job):
    # the same client instance holds the ETag across two calls
    client = ServeClient(service.url)
    assert not client.analysis("baseline").from_cache
    assert client.analysis("baseline").from_cache


def test_cancel_finished_job_fails_cleanly(service, finished_job,
                                           capsys):
    assert main(["cancel", "--url", service.url, finished_job]) == 1
    err = capsys.readouterr().err
    assert err.startswith("repro-serve: error:")
    assert "409" in err


def test_unreachable_daemon_is_one_line(capsys):
    assert main(["status", "--url", "http://127.0.0.1:9"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("repro-serve: error:")
    assert "cannot reach" in err


def test_missing_scenario_file(service, capsys):
    assert main(["submit", "--url", service.url,
                 "--scenario", "/nonexistent/file.toml"]) == 1
    assert "no such file" in capsys.readouterr().err
