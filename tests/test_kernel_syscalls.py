"""Unit tests for the file syscall layer (FileHandle)."""

import pytest

from repro.kernel import BufferCache, FileSystem, ReadAheadState
from repro.kernel.fs import FsError
from repro.kernel.syscalls import FileHandle
from tests.conftest import drive


@pytest.fixture
def fs(sim, traced_driver):
    cache = BufferCache(sim, traced_driver, capacity_blocks=256,
                        sectors_per_block=2)
    return FileSystem(cache)


def handle(sim, fs, path, size=0, readahead=None, zone="data"):
    """Create a file of ``size`` bytes whose data is NOT cached."""
    inode = drive(sim, fs.create(path, zone=zone))
    if size:
        drive(sim, fs.truncate_extend(inode, size))
        drive(sim, fs.cache.sync())
        for block in inode.blocks:
            fs.cache.invalidate(block)
        fs.cache.driver.transport.drain_now()
        fs.cache.driver.transport.user_buffer.clear()
    return FileHandle(fs, inode, readahead=readahead)


def traces(fs):
    fs.cache.driver.transport.drain_now()
    return fs.cache.driver.transport.user_buffer.to_array()


def test_write_extends_file_and_is_delayed(sim, fs):
    h = handle(sim, fs, "/out")
    n = drive(sim, h.write(3000))
    assert n == 3000
    assert h.inode.size_bytes == 3000
    assert h.inode.nblocks == 3
    assert fs.cache.dirty_count > 0


def test_append_positions_at_eof(sim, fs):
    h = handle(sim, fs, "/log")
    drive(sim, h.write(1024))
    h.seek(0)
    drive(sim, h.append(512))
    assert h.inode.size_bytes == 1536


def test_read_returns_clipped_byte_count(sim, fs):
    h = handle(sim, fs, "/in", size=2048)
    h.seek(1024)
    assert drive(sim, h.read(4096)) == 1024
    assert drive(sim, h.read(10)) == 0  # at EOF


def test_read_miss_generates_disk_reads(sim, fs):
    h = handle(sim, fs, "/in", size=4096)
    drive(sim, h.read(1024))
    arr = traces(fs)
    reads = arr[arr["write"] == 0]
    assert len(reads) >= 1


def test_sequential_reads_grow_request_sizes(sim, fs):
    ra = ReadAheadState(max_window_kb=16)
    h = handle(sim, fs, "/stream", size=64 * 1024, readahead=ra)
    while True:
        n = drive(sim, h.read(1024))
        if n == 0:
            break
    arr = traces(fs)
    reads = arr[(arr["write"] == 0)]
    sizes = reads["size_kb"].tolist()
    assert max(sizes) == 16.0  # window saturates at the 16 KB ceiling
    assert sizes[0] == 1.0     # stream starts with a single block


def test_readahead_hits_avoid_disk(sim, fs):
    ra = ReadAheadState(max_window_kb=16)
    h = handle(sim, fs, "/stream", size=32 * 1024, readahead=ra)
    while drive(sim, h.read(1024)):
        pass
    arr = traces(fs)
    reads = arr[arr["write"] == 0]
    # Far fewer disk requests than the 32 x 1 KB syscalls issued.
    assert len(reads) < 16


def test_random_reads_stay_small(sim, fs):
    ra = ReadAheadState(max_window_kb=16)
    h = handle(sim, fs, "/rand", size=64 * 1024, readahead=ra)
    import numpy as np
    rng = np.random.default_rng(3)
    for _ in range(10):
        h.seek(int(rng.integers(0, 63)) * 1024)
        drive(sim, h.read(1024))
    arr = traces(fs)
    reads = arr[arr["write"] == 0]
    assert max(reads["size_kb"]) <= 2.0


def test_closed_handle_rejects_io(sim, fs):
    h = handle(sim, fs, "/f", size=1024)
    h.close()
    with pytest.raises(FsError):
        drive(sim, h.read(10))
    with pytest.raises(FsError):
        drive(sim, h.write(10))


def test_context_manager_closes(sim, fs):
    h = handle(sim, fs, "/f")
    with h:
        pass
    assert h.closed


def test_invalid_arguments(sim, fs):
    h = handle(sim, fs, "/f", size=1024)
    with pytest.raises(ValueError):
        h.seek(-1)
    with pytest.raises(ValueError):
        drive(sim, h.read(0))
    with pytest.raises(ValueError):
        drive(sim, h.write(0))


def test_write_then_read_hits_cache(sim, fs):
    h = handle(sim, fs, "/f")
    drive(sim, h.write(2048))
    h.seek(0)
    before = fs.cache.stats.misses
    drive(sim, h.read(2048))
    assert fs.cache.stats.misses == before  # all hits


def test_atime_updates_dirty_inode_on_read(sim, traced_driver):
    from repro.kernel import BufferCache, FileSystem
    cache = BufferCache(sim, traced_driver, capacity_blocks=256,
                        sectors_per_block=2)
    fs_atime = FileSystem(cache, atime_updates=True)
    h = handle(sim, fs_atime, "/f", size=2048)
    inode_block = fs_atime.inode_table_block(h.inode.ino)
    assert not fs_atime.cache.is_dirty(inode_block)
    drive(sim, h.read(1024))
    assert fs_atime.cache.is_dirty(inode_block)


def test_no_atime_by_default(sim, fs):
    h = handle(sim, fs, "/f", size=2048)
    inode_block = fs.inode_table_block(h.inode.ino)
    # handle() syncs after setup, so the inode block starts clean
    assert not fs.cache.is_dirty(inode_block)
    drive(sim, h.read(1024))
    assert not fs.cache.is_dirty(inode_block)
