"""The volume layer: address math properties, policies, driver fan-out."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.pious import _StripeMap
from repro.disk import (
    Disk,
    DiskGeometry,
    DiskServiceModel,
    IORequest,
    VOLUME_POLICIES,
    ConcatVolume,
    Raid0Volume,
    Raid1Volume,
    SingleVolume,
)
from repro.disk.volume import (
    capacity_sectors,
    concat_extents,
    raid0_extents,
)
from repro.driver import InstrumentedIDEDriver, ProcTraceTransport
from repro.sim import Simulator


# -- pure address math: property tests ----------------------------------------
spans = st.tuples(st.integers(min_value=0, max_value=5000),
                  st.integers(min_value=1, max_value=600))


@given(span=spans,
       ndisks=st.integers(min_value=1, max_value=5),
       stripe=st.integers(min_value=1, max_value=64))
@settings(max_examples=200)
def test_raid0_extents_cover_exactly_once(span, ndisks, stripe):
    """Every logical sector maps to exactly one (disk, local) sector."""
    sector, nsectors = span
    extents = raid0_extents(sector, nsectors, ndisks, stripe)
    logical = []
    for disk, local, count in extents:
        assert count >= 1
        for l in range(local, local + count):
            unit, within = divmod(l, stripe)
            logical.append((unit * ndisks + disk) * stripe + within)
    assert sorted(logical) == list(range(sector, sector + nsectors))


@given(span=spans,
       ndisks=st.integers(min_value=1, max_value=5),
       stripe=st.integers(min_value=1, max_value=64))
@settings(max_examples=200)
def test_raid0_per_disk_offsets_monotone_and_coalesced(span, ndisks, stripe):
    sector, nsectors = span
    extents = raid0_extents(sector, nsectors, ndisks, stripe)
    by_disk = {}
    previous = None
    for disk, local, count in extents:
        # strictly increasing local addresses per member, no overlap
        if disk in by_disk:
            assert local > by_disk[disk]
        by_disk[disk] = local + count - 1
        # coalescing really happened: no two adjacent same-disk extents
        # that touch
        if previous is not None and previous[0] == disk:
            assert previous[1] + previous[2] < local
        previous = (disk, local, count)


@given(span=spans,
       sizes=st.lists(st.integers(min_value=100, max_value=4000),
                      min_size=1, max_size=5))
@settings(max_examples=200)
def test_concat_extents_cover_exactly_once(span, sizes):
    sector, nsectors = span
    total = sum(sizes)
    sector = min(sector, max(total - nsectors, 0))
    nsectors = min(nsectors, total - sector)
    if nsectors < 1:
        return
    extents = concat_extents(sector, nsectors, sizes)
    bases = [sum(sizes[:i]) for i in range(len(sizes))]
    logical = []
    for disk, local, count in extents:
        assert 0 <= local and local + count <= sizes[disk]
        logical.extend(range(bases[disk] + local,
                             bases[disk] + local + count))
    assert logical == list(range(sector, sector + nsectors))


@given(sizes=st.lists(st.integers(min_value=64, max_value=4000),
                      min_size=1, max_size=5),
       stripe=st.integers(min_value=1, max_value=64))
def test_capacity_formulas(sizes, stripe):
    assert capacity_sectors("single", sizes[:1], stripe) == sizes[0]
    assert capacity_sectors("concat", sizes, stripe) == sum(sizes)
    assert capacity_sectors("raid1", sizes, stripe) == min(sizes)
    raid0 = capacity_sectors("raid0", sizes, stripe)
    assert raid0 == (min(sizes) // stripe) * stripe * len(sizes)
    assert raid0 <= sum(sizes)
    # every logical sector of a full-capacity span must stay in bounds
    if raid0:
        for disk, local, count in raid0_extents(0, raid0, len(sizes),
                                                stripe):
            assert local + count <= sizes[disk]


# -- the PIOUS stripe map obeys the same contract -----------------------------
@given(offset=st.integers(min_value=0, max_value=500_000),
       nbytes=st.integers(min_value=1, max_value=200_000),
       stripe_kb=st.integers(min_value=1, max_value=64),
       nservers=st.integers(min_value=1, max_value=8))
@settings(max_examples=200)
def test_stripe_map_chunks_cover_exactly_once(offset, nbytes, stripe_kb,
                                              nservers):
    stripe = stripe_kb * 1024
    smap = _StripeMap("f", stripe, list(range(nservers)))
    seen = 0
    last_local = {}
    for server, local, chunk in smap.chunks(offset, nbytes):
        assert 1 <= chunk <= stripe
        # invert: local offset back to the logical byte
        unit, within = divmod(local, stripe)
        logical = (unit * nservers + server) * stripe + within
        assert logical == offset + seen
        seen += chunk
        # per-server local offsets strictly increase
        if server in last_local:
            assert local >= last_local[server]
        last_local[server] = local + chunk
    assert seen == nbytes


def test_stripe_map_rejects_empty_transfer():
    smap = _StripeMap("f", 8192, [0, 1])
    with pytest.raises(ValueError):
        list(smap.chunks(0, 0))


# -- devices over a live simulator --------------------------------------------
def _mkdisks(sim, n, capacity_mb=100):
    return [Disk(sim,
                 service=DiskServiceModel(
                     geometry=DiskGeometry.from_capacity_mb(capacity_mb)),
                 rng=np.random.default_rng(i),
                 name=f"hd{chr(ord('a') + i)}0")
            for i in range(n)]


def test_registry_carries_all_policies():
    assert set(VOLUME_POLICIES.names()) >= \
        {"single", "concat", "raid0", "raid1"}
    assert VOLUME_POLICIES.get("raid0") is Raid0Volume


def test_single_volume_requires_one_disk():
    sim = Simulator()
    with pytest.raises(ValueError):
        SingleVolume(_mkdisks(sim, 2))


def test_volume_bounds_error_names_device():
    sim = Simulator()
    volume = Raid0Volume(_mkdisks(sim, 2), stripe_sectors=16)
    with pytest.raises(ValueError) as err:
        volume.map_extents(volume.total_sectors - 1, 2, False)
    assert "beyond end of md0" in str(err.value)


def test_raid1_write_mirrors_read_rotates():
    sim = Simulator()
    volume = Raid1Volume(_mkdisks(sim, 3))
    assert volume._map(10, 4, True) == ((0, 10, 4), (1, 10, 4), (2, 10, 4))
    reads = [volume._map(10, 4, False)[0][0] for _ in range(4)]
    assert reads == [0, 1, 2, 0]


def test_volume_submit_completes_all_parts_and_counts():
    sim = Simulator()
    volume = Raid0Volume(_mkdisks(sim, 2), stripe_sectors=16)
    request = IORequest(sector=0, nsectors=64, is_write=True)
    done = []
    volume.submit(request).callbacks.append(lambda ev: done.append(ev.value))
    sim.run(until=5.0)
    assert done == [request]
    assert not request.failed
    assert request.latency > 0
    assert volume.logical_requests == 1
    assert volume.physical_requests == 4  # one part per stripe unit
    assert all(d.stats.writes == 2 for d in volume.disks)


def test_driver_traces_one_record_per_physical_part():
    sim = Simulator()
    disks = _mkdisks(sim, 2)
    volume = Raid0Volume(disks, stripe_sectors=16)
    transport = ProcTraceTransport(sim, drain_interval=0.5)
    driver = InstrumentedIDEDriver(sim, volume, node_id=0,
                                   transport=transport)
    driver.write_sectors(0, 64)       # 4 stripe units -> 4 physical parts
    driver.read_sectors(16, 16)       # exactly one stripe unit on disk 1
    sim.run(until=10)
    transport.drain_now()
    arr = transport.user_buffer.to_array()
    assert len(arr) == 5
    assert driver.requests_issued == 5
    # parts are addressed in member-local sector space
    assert arr["sector"].tolist() == [0, 0, 16, 16, 0]
    assert arr["size_kb"].tolist() == [8.0] * 5
    assert disks[0].stats.writes == 2 and disks[1].stats.writes == 2
    assert disks[1].stats.reads == 1 and disks[0].stats.reads == 0


def test_driver_single_volume_matches_bare_disk_trace():
    """`single` is bit-identical to driving the disk directly."""
    def run(device_of):
        sim = Simulator()
        disk = Disk(sim, rng=np.random.default_rng(0))
        transport = ProcTraceTransport(sim, drain_interval=0.5)
        driver = InstrumentedIDEDriver(sim, device_of(disk),
                                       transport=transport)
        for s in (1000, 64, 5000):
            driver.read_sectors(s, 8)
        driver.write_sectors(2048, 16)
        sim.run(until=10)
        transport.drain_now()
        return transport.user_buffer.to_array()

    bare = run(lambda disk: disk)
    single = run(lambda disk: SingleVolume([disk]))
    assert np.array_equal(bare, single)


def test_concat_volume_splits_boundary_spans():
    sim = Simulator()
    volume = ConcatVolume(_mkdisks(sim, 2, capacity_mb=50))
    size0 = volume.disks[0].total_sectors
    parts = volume.map_extents(size0 - 8, 16, True)
    assert parts == ((0, size0 - 8, 8), (1, 0, 8))
