"""Tests for the SVG rendering backend."""

import numpy as np
import pytest

from repro.viz import svg_bar_chart, svg_scatter


def test_scatter_is_wellformed_svg():
    doc = svg_scatter([0, 1, 2], [3, 4, 5], title="T", xlabel="x",
                      ylabel="y")
    assert doc.startswith("<svg")
    assert doc.rstrip().endswith("</svg>")
    assert doc.count("<circle") == 3
    assert ">T</text>" in doc
    assert ">x</text>" in doc


def test_scatter_empty_still_valid():
    doc = svg_scatter([], [])
    assert "<circle" not in doc
    assert doc.startswith("<svg")


def test_scatter_thins_huge_inputs():
    n = 100_000
    doc = svg_scatter(np.arange(n), np.arange(n), max_points=1000)
    assert doc.count("<circle") <= 1001


def test_scatter_mismatched_lengths():
    with pytest.raises(ValueError):
        svg_scatter([1, 2], [1])


def test_scatter_escapes_labels():
    doc = svg_scatter([1], [1], title="a<b&c")
    assert "a&lt;b&amp;c" in doc
    assert "a<b" not in doc


def test_bar_chart_one_rect_per_value():
    doc = svg_bar_chart(["a", "b", "c"], [1.0, 2.0, 3.0])
    assert doc.count("<rect") == 1 + 1 + 3  # background + frame + bars
    assert ">a</text>" in doc


def test_bar_chart_mismatch():
    with pytest.raises(ValueError):
        svg_bar_chart(["a"], [1.0, 2.0])


def test_figure_to_svg(tmp_path):
    from repro.core import TraceDataset, make_figure
    from repro.core.experiments import ExperimentResult
    rng = np.random.default_rng(0)
    rows = [(float(i), int(rng.integers(0, 10**6)), 1, 1, 1.0, 0)
            for i in range(50)]
    result = ExperimentResult(name="combined",
                              trace=TraceDataset.from_records(rows),
                              duration=50.0, nnodes=1)
    for number in (6, 7):
        out = tmp_path / f"fig{number}.svg"
        make_figure(number, result).to_svg(out)
        text = out.read_text()
        assert text.startswith("<svg")
        assert "Figure" in text
