"""Unit and property tests for the read-ahead window logic.

The observable that matters is the *new coverage* each plan adds — that is
what turns into a disk request (already-covered blocks are cache hits).
"""

import pytest
from hypothesis import given, strategies as st

from repro.kernel import ReadAheadState


def coverage_deltas(ra, accesses, file_nblocks=100_000):
    """Plan a sequence of reads; return newly-fetched blocks per plan.

    New fetch = coverage growth past both the prior coverage and the read
    position (a seek moves coverage without fetching).
    """
    deltas = []
    for first, n in accesses:
        before = ra._covered_end
        ra.plan(first, n, file_nblocks)
        deltas.append(max(0, ra._covered_end - max(before, first)))
    return deltas


def sequential_1kb(n, start=0):
    return [(start + i, 1) for i in range(n)]


def test_first_access_fetches_only_what_is_asked():
    ra = ReadAheadState(max_window_kb=16)
    start, count = ra.plan(0, 1, file_nblocks=100)
    assert (start, count) == (0, 1)


def test_sequential_stream_grows_to_ceiling():
    ra = ReadAheadState(max_window_kb=16)
    deltas = coverage_deltas(ra, sequential_1kb(40))
    assert deltas[0] == 1
    assert max(deltas) == 16          # saturates at 16 KB window
    assert all(d <= 16 for d in deltas)
    # the bulk of a long stream is fetched in full-window units
    assert deltas.count(16) >= 2


def test_plan_always_covers_the_request():
    ra = ReadAheadState(max_window_kb=16)
    for first, n in [(0, 1), (1, 4), (5, 2), (100, 3)]:
        start, count = ra.plan(first, n, 1000)
        assert start == first
        assert count >= n


def test_seek_resets_window_and_counts():
    ra = ReadAheadState(max_window_kb=16)
    coverage_deltas(ra, sequential_1kb(6))
    assert ra.seeks == 0
    deltas = coverage_deltas(ra, [(500, 1)])
    assert ra.seeks == 1
    assert deltas == [1]              # back to a single block


def test_resumed_stream_regrows():
    ra = ReadAheadState(max_window_kb=16)
    coverage_deltas(ra, sequential_1kb(6))
    coverage_deltas(ra, [(500, 1)])
    deltas = coverage_deltas(ra, sequential_1kb(30, start=501))
    assert max(deltas) == 16


def test_window_clipped_at_file_end():
    ra = ReadAheadState(max_window_kb=16)
    for i in range(10):
        start, count = ra.plan(i, 1, 10)
        assert start + count <= 10


def test_dynamic_ceiling_provider_scales_window():
    ceiling = {"kb": 16}
    ra = ReadAheadState(max_window_provider=lambda: ceiling["kb"])
    deltas = coverage_deltas(ra, sequential_1kb(40))
    assert max(deltas) == 16
    ceiling["kb"] = 32                # multiprogramming scale-up
    deltas = coverage_deltas(ra, sequential_1kb(60, start=40))
    assert max(deltas) == 32


def test_request_larger_than_window_passes_through():
    ra = ReadAheadState(max_window_kb=16)
    _, count = ra.plan(0, 40, 1000)
    assert count >= 40


def test_invalid_arguments():
    with pytest.raises(ValueError):
        ReadAheadState(max_window_kb=0)
    ra = ReadAheadState()
    with pytest.raises(ValueError):
        ra.plan(0, 0, 10)


@given(st.lists(st.tuples(st.integers(0, 500), st.integers(1, 8)),
                min_size=1, max_size=40),
       st.integers(1, 64))
def test_plan_invariants(accesses, max_kb):
    ra = ReadAheadState(max_window_kb=max_kb)
    file_nblocks = 512
    for first, n in accesses:
        before = ra._covered_end
        start, count = ra.plan(first, n, file_nblocks)
        assert start == first
        assert start + count <= file_nblocks
        # always covers the (clipped) request
        assert count >= min(n, file_nblocks - first)
        # never fetches more new blocks than one request plus one window
        new_fetch = max(0, ra._covered_end - max(before, first))
        assert new_fetch <= n + ra.max_window_blocks
