"""Unit tests for the observability metric primitives."""

import json
import math

import pytest

from repro.obs import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    bucket_edge,
    bucket_of,
    compare_snapshots,
    flatten_snapshot,
    render_snapshot_table,
)


# -- counters / gauges --------------------------------------------------------
def test_counter_counts_and_rejects_negative():
    c = Counter("events")
    c.inc()
    c.inc(3)
    assert c.value == 4
    with pytest.raises(ValueError):
        c.inc(-1)


def test_counter_children_are_get_or_create():
    c = Counter("requests")
    a = c.child("hda0")
    assert c.child("hda0") is a
    a.inc(2)
    c.child("hda1").inc(5)
    snap = c.snapshot()
    assert snap == {"type": "counter",
                    "children": {"hda0": 2, "hda1": 5}}


def test_counter_snapshot_keeps_parent_value_alongside_children():
    c = Counter("n")
    c.inc(7)
    c.child("x").inc(1)
    assert c.snapshot() == {"type": "counter",
                            "children": {"x": 1}, "value": 7}


def test_gauge_tracks_high_water_mark():
    g = Gauge("depth")
    g.set(5)
    g.inc(2)
    g.dec(4)
    assert g.value == 3
    assert g.max == 7
    assert g.snapshot() == {"type": "gauge",
                            "value": {"value": 3, "max": 7}}


def test_gauge_at_its_max_snapshots_as_scalar():
    g = Gauge("depth")
    g.set(9)
    assert g.snapshot() == {"type": "gauge", "value": 9}


# -- histograms ---------------------------------------------------------------
def test_histogram_statistics():
    h = Histogram("lat")
    for v in (1.0, 2.0, 3.0):
        h.observe(v)
    assert h.count == 3
    assert h.sum == 6.0
    assert h.mean == 2.0
    assert h.min == 1.0 and h.max == 3.0


def test_histogram_log2_buckets():
    h = Histogram("sizes")
    for v in (0.75, 1.0, 1.5, 3.0, 4.0, 0.0, -2.0):
        h.observe(v)
    # 0.75 -> (0.5, 1]; 1.0/1.5 -> (1, 2]; 3.0/4.0 -> exponent 2 and 3
    assert h.buckets[0] == 1
    assert h.buckets[1] == 2
    assert h.buckets[2] == 1
    assert h.buckets[3] == 1
    # zero and negative observations go to the explicit underflow
    # bucket, not to nonsense exponent keys
    assert h.underflow == 2
    assert -1024 not in h.buckets and -1025 not in h.buckets


def test_histogram_underflow_in_snapshot_and_render():
    h = Histogram("gap")
    for v in (0.0, -1.5, 2.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap["value"]["buckets"] == {"underflow": 2, "2": 1}
    from repro.obs import flatten_snapshot
    flat = flatten_snapshot({"gap": snap})
    assert flat["gap.underflow"] == 2
    assert flat["gap.count"] == 3


def test_bucket_of_routes_nonpositive_to_underflow():
    assert bucket_of(0.0) == "underflow"
    assert bucket_of(-3.0) == "underflow"
    assert bucket_edge("underflow") == 0.0
    # legacy integer sentinels from old persisted snapshots still decode
    assert bucket_edge(-1024) == 0.0
    assert bucket_edge(-1025) == float("-inf")


def test_bucket_of_brackets_every_positive_value():
    for v in (1e-9, 0.3, 1.0, 7.0, 1024.0, 3.7e11):
        e = bucket_of(v)
        assert 2.0 ** (e - 1) <= v <= bucket_edge(e)


def test_histogram_snapshot_round_trips_through_json():
    h = Histogram("x")
    h.observe(0.5)
    h.observe(8.0)
    snap = json.loads(json.dumps(h.snapshot()))
    assert snap["value"]["count"] == 2
    assert snap["value"]["min"] == 0.5
    assert snap["value"]["max"] == 8
    assert snap["value"]["buckets"] == {"0": 1, "4": 1}


def test_empty_histogram_snapshot_is_minimal():
    assert Histogram("x").snapshot() == {"type": "histogram",
                                         "value": {"count": 0, "sum": 0}}


# -- registry -----------------------------------------------------------------
def test_registry_get_or_create_and_type_guard():
    reg = MetricsRegistry()
    c = reg.counter("a")
    assert reg.counter("a") is c
    with pytest.raises(TypeError):
        reg.gauge("a")
    assert len(reg) == 1


def test_registry_snapshot_is_sorted_and_deterministic():
    reg = MetricsRegistry()
    reg.counter("z").inc()
    reg.counter("a").inc(2)
    reg.histogram("m").observe(1.5)
    snap = reg.snapshot()
    assert list(snap) == ["a", "m", "z"]
    assert snap == reg.snapshot()


def test_registry_span_times_into_histogram():
    reg = MetricsRegistry()
    with reg.span("phase.settle"):
        math.sqrt(2.0)
    h = reg.histogram("phase.settle")
    assert h.count == 1
    assert h.sum >= 0.0


def test_null_registry_is_inert():
    assert NULL_REGISTRY.enabled is False
    assert MetricsRegistry.enabled is True
    c = NULL_REGISTRY.counter("x")
    c.inc(10)
    NULL_REGISTRY.gauge("y").set(3)
    NULL_REGISTRY.histogram("z").observe(1.0)
    with NULL_REGISTRY.span("s"):
        pass
    assert c.value == 0
    assert NULL_REGISTRY.snapshot() == {}
    # every instrument is the one shared no-op
    assert NULL_REGISTRY.counter("p") is NULL_REGISTRY.histogram("q")
    assert NullRegistry().counter("r").child("l") is NULL_REGISTRY.counter("r")


# -- flatten / render / compare ----------------------------------------------
def _sample_snapshot():
    reg = MetricsRegistry()
    reg.counter("sim.events").inc(100)
    g = reg.gauge("sim.heap")
    g.set(9)
    g.set(4)
    h = reg.histogram("disk.service")
    h.child("hda0").observe(2.0)
    h.child("hda0").observe(4.0)
    return reg.snapshot()


def test_flatten_snapshot_rows():
    flat = flatten_snapshot(_sample_snapshot())
    assert flat["sim.events"] == 100
    assert flat["sim.heap"] == 4
    assert flat["sim.heap.max"] == 9
    assert flat["disk.service{hda0}.count"] == 2
    assert flat["disk.service{hda0}.mean"] == 3.0
    assert flat["disk.service{hda0}.max"] == 4


def test_render_snapshot_table_aligns_and_filters():
    snap = _sample_snapshot()
    table = render_snapshot_table({"run": snap}, only=["sim."])
    lines = table.splitlines()
    assert lines[0].startswith("metric")
    assert all("disk." not in line for line in lines)
    assert any("sim.events" in line and "100" in line for line in lines)


def test_render_snapshot_table_delta_column():
    before = _sample_snapshot()
    reg = MetricsRegistry()
    reg.counter("sim.events").inc(150)
    table = render_snapshot_table({"a": before, "b": reg.snapshot()})
    row = next(line for line in table.splitlines() if "sim.events" in line)
    assert "+50.0" in row
    assert "delta%" in table.splitlines()[0]


def test_compare_snapshots_diffs_and_tolerance():
    reg1, reg2 = MetricsRegistry(), MetricsRegistry()
    reg1.counter("n").inc(100)
    reg2.counter("n").inc(104)
    reg1.counter("same").inc(5)
    reg2.counter("same").inc(5)
    diffs = compare_snapshots(reg1.snapshot(), reg2.snapshot())
    assert diffs == {"n": (100, 104)}
    assert compare_snapshots(reg1.snapshot(), reg2.snapshot(),
                             rel_tolerance=0.05) == {}
