"""Unit tests for the buffer cache."""

import pytest

from repro.kernel import BufferCache
from tests.conftest import drive


@pytest.fixture
def cache(sim, traced_driver):
    return BufferCache(sim, traced_driver, capacity_blocks=8,
                       sectors_per_block=2, cluster_blocks=4)


def traces(cache):
    cache.driver.transport.drain_now()
    return cache.driver.transport.user_buffer.to_array()


def test_read_miss_then_hit(sim, cache):
    drive(sim, cache.read_block(100))
    assert cache.stats.misses == 1
    drive(sim, cache.read_block(100))
    assert cache.stats.hits == 1
    arr = traces(cache)
    assert len(arr) == 1  # only the miss reached the disk
    assert arr["sector"][0] == 200  # block 100 * 2 sectors
    assert arr["size_kb"][0] == 1.0


def test_read_range_coalesces_missing_run(sim, cache):
    drive(sim, cache.read_range(10, 4))
    arr = traces(cache)
    assert len(arr) == 1
    assert arr["size_kb"][0] == 4.0


def test_read_range_fragments_around_cached_block(sim, cache):
    drive(sim, cache.read_block(12))
    drive(sim, cache.read_range(10, 5))  # 10,11 cached? no: 12 cached
    arr = traces(cache)
    # one request for the earlier miss, then [10,11] and [13,14]
    sizes = sorted(arr["size_kb"].tolist())
    assert sizes == [1.0, 2.0, 2.0]


def test_write_is_delayed(sim, cache):
    drive(sim, cache.write_block(50))
    assert cache.is_dirty(50)
    assert len(traces(cache)) == 0  # nothing hit the disk yet
    drive(sim, cache.sync())
    assert not cache.is_dirty(50)
    arr = traces(cache)
    assert len(arr) == 1 and arr["write"][0] == 1


def test_sync_clusters_contiguous_dirty_blocks(sim, cache):
    for b in (20, 21, 22, 40):
        drive(sim, cache.write_block(b))
    drive(sim, cache.sync())
    arr = traces(cache)
    sizes = sorted(arr[arr["write"] == 1]["size_kb"].tolist())
    assert sizes == [1.0, 3.0]


def test_cluster_limit_caps_writeback_size(sim, cache):
    for b in range(60, 70):  # 10 contiguous dirty blocks, limit 4
        drive(sim, cache.write_block(b))
    drive(sim, cache.sync())
    arr = traces(cache)
    sizes = arr[arr["write"] == 1]["size_kb"].tolist()
    assert max(sizes) == 4.0
    assert sum(sizes) == 10.0


def test_flush_aged_only_writes_old_buffers(sim, cache):
    def scenario():
        yield from cache.write_block(1)
        yield sim.timeout(10.0)
        yield from cache.write_block(2)
        yield from cache.flush_aged(5.0)

    drive(sim, scenario())
    assert not cache.is_dirty(1)
    assert cache.is_dirty(2)


def test_eviction_of_clean_lru(sim, cache):
    for b in range(8):
        drive(sim, cache.read_block(b))
    drive(sim, cache.read_block(100))
    assert not cache.contains(0)  # LRU clean victim
    assert cache.contains(100)
    assert cache.stats.evictions == 1


def test_eviction_prefers_clean_over_dirty(sim, cache):
    drive(sim, cache.write_block(0))       # dirty, oldest
    for b in range(1, 8):
        drive(sim, cache.read_block(b))    # clean
    drive(sim, cache.read_block(100))
    assert cache.contains(0)               # dirty survivor
    assert not cache.contains(1)


def test_eviction_of_dirty_flushes_first(sim):
    from repro.disk import Disk
    from repro.driver import InstrumentedIDEDriver, ProcTraceTransport
    import numpy as np
    disk = Disk(sim, rng=np.random.default_rng(0))
    transport = ProcTraceTransport(sim)
    driver = InstrumentedIDEDriver(sim, disk, transport=transport)
    cache = BufferCache(sim, driver, capacity_blocks=2, sectors_per_block=2)
    for b in (0, 1, 2):
        drive(sim, cache.write_block(b))
    transport.drain_now()
    arr = transport.user_buffer.to_array()
    assert (arr["write"] == 1).sum() >= 1  # eviction forced a writeback
    assert len(cache) <= 2


def test_invalidate_clean_ok_dirty_rejected(sim, cache):
    drive(sim, cache.read_block(5))
    cache.invalidate(5)
    assert not cache.contains(5)
    drive(sim, cache.write_block(6))
    with pytest.raises(ValueError):
        cache.invalidate(6)


def test_hit_ratio_statistic(sim, cache):
    drive(sim, cache.read_block(1))
    drive(sim, cache.read_block(1))
    drive(sim, cache.read_block(1))
    assert cache.stats.hit_ratio == pytest.approx(2 / 3)


def test_bad_arguments(sim, cache):
    with pytest.raises(ValueError):
        drive(sim, cache.read_range(0, 0))
    with pytest.raises(ValueError):
        BufferCache(sim, cache.driver, capacity_blocks=0)
