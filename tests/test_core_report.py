"""Tests for the characterization report generator."""

import numpy as np

from repro.core import TraceDataset, characterize, full_report
from repro.core.experiments import ExperimentResult


def make_result(name="wavelet", n=200, seed=0):
    rng = np.random.default_rng(seed)
    rows = [(float(i) * 0.5, int(rng.integers(0, 500_000)),
             int(rng.random() < 0.6), 1,
             float(rng.choice([1.0, 4.0, 16.0], p=[0.3, 0.6, 0.1])), 0)
            for i in range(n)]
    return ExperimentResult(name=name, trace=TraceDataset.from_records(rows),
                            duration=n * 0.5, nnodes=1)


def test_characterize_mentions_all_sections():
    text = characterize(make_result())
    for keyword in ("requests:", "mix:", "sizes:", "classes:", "spatial:",
                    "temporal:", "pattern:", "arrivals:", "trains:",
                    "Miller-Katz:"):
        assert keyword in text, keyword


def test_characterize_empty_result():
    empty = ExperimentResult(name="baseline", trace=TraceDataset.empty(),
                             duration=10.0, nnodes=1)
    text = characterize(empty)
    assert "no I/O recorded" in text


def test_characterize_with_figures_inlines_plots():
    text = characterize(make_result("combined"), include_figures=True)
    assert "Figure 5" in text
    assert "Figure 8" in text


def test_full_report_includes_table_and_sections():
    results = {"wavelet": make_result("wavelet"),
               "combined": make_result("combined", seed=1)}
    text = full_report(results, title="my study")
    assert text.startswith("my study")
    assert "=== wavelet" in text
    assert "=== combined" in text
    assert "Table 1" in text


def test_cli_report_flag(capsys):
    from repro.cli import main
    rc = main(["baseline", "--nodes", "1", "--duration", "120", "--report",
               "--figures"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "=== baseline" in out
    assert "Miller-Katz:" in out
