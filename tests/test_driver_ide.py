"""Unit tests for the instrumented IDE driver and /proc transport."""

import numpy as np
import pytest

from repro.disk import Disk
from repro.driver import (
    HDIO_GET_TRACE,
    HDIO_SET_TRACE,
    InstrumentedIDEDriver,
    ProcTraceTransport,
    TraceLevel,
)
from repro.sim import Simulator


@pytest.fixture
def rig():
    sim = Simulator()
    disk = Disk(sim, rng=np.random.default_rng(0))
    transport = ProcTraceTransport(sim, drain_interval=0.5)
    driver = InstrumentedIDEDriver(sim, disk, node_id=3, transport=transport)
    return sim, disk, transport, driver


def test_each_request_generates_one_trace_record(rig):
    sim, disk, transport, driver = rig
    driver.read_sectors(1000, 2)
    driver.write_sectors(2000, 8)
    sim.run(until=10)
    transport.drain_now()
    arr = transport.user_buffer.to_array()
    assert len(arr) == 2
    assert arr["sector"].tolist() == [1000, 2000]
    assert arr["write"].tolist() == [0, 1]
    assert arr["node"].tolist() == [3, 3]
    assert arr["size_kb"].tolist() == [1.0, 4.0]


def test_pending_count_reflects_queue_depth(rig):
    sim, disk, transport, driver = rig
    for s in (100, 200, 300):
        driver.read_sectors(s, 2)
    sim.run(until=10)
    transport.drain_now()
    arr = transport.user_buffer.to_array()
    # First record logged with itself as the only pending request, etc.
    assert arr["pending"].tolist() == [1, 2, 3]


def test_ioctl_toggles_instrumentation(rig):
    sim, disk, transport, driver = rig
    driver.ioctl(HDIO_SET_TRACE, TraceLevel.OFF)
    assert driver.ioctl(HDIO_GET_TRACE) == TraceLevel.OFF
    driver.read_sectors(100, 2)
    sim.run(until=5)
    driver.ioctl(HDIO_SET_TRACE, TraceLevel.BASIC)
    driver.read_sectors(200, 2)
    sim.run(until=10)
    transport.drain_now()
    arr = transport.user_buffer.to_array()
    assert len(arr) == 1
    assert arr["sector"][0] == 200
    # but the disk serviced both
    assert disk.stats.reads == 2


def test_unknown_ioctl_rejected(rig):
    _, _, _, driver = rig
    with pytest.raises(ValueError):
        driver.ioctl(0xDEAD)


def test_verbose_level_adds_completion_records(rig):
    sim, disk, transport, driver = rig
    driver.ioctl(HDIO_SET_TRACE, TraceLevel.VERBOSE)
    driver.read_sectors(100, 2)
    sim.run(until=10)
    transport.drain_now()
    arr = transport.user_buffer.to_array()
    assert len(arr) == 2  # submit + completion
    assert arr["time"][1] > arr["time"][0]


def test_reset_clock_offsets_timestamps(rig):
    sim, disk, transport, driver = rig

    def scenario(sim):
        yield sim.timeout(100.0)
        driver.reset_clock()
        driver.read_sectors(100, 2)

    sim.process(scenario(sim))
    sim.run(until=200)
    transport.drain_now()
    arr = transport.user_buffer.to_array()
    assert arr["time"][0] == pytest.approx(0.0)


def test_byte_interface_rounds_to_sectors(rig):
    sim, disk, transport, driver = rig
    # 1 byte at offset 513 touches exactly sector 1
    driver.write_bytes(513, 1)
    # 1024 bytes spanning a sector boundary touches 3 sectors
    driver.read_bytes(256, 1024)
    sim.run(until=10)
    transport.drain_now()
    arr = transport.user_buffer.to_array()
    assert arr["sector"].tolist() == [1, 0]
    assert arr["size_kb"].tolist() == [0.5, 1.5]


def test_byte_interface_rejects_empty(rig):
    _, _, _, driver = rig
    with pytest.raises(ValueError):
        driver.read_bytes(0, 0)


def test_ring_overflow_drops_and_counts():
    sim = Simulator()
    disk = Disk(sim, rng=np.random.default_rng(0))
    transport = ProcTraceTransport(sim, ring_capacity=2, drain_interval=100.0)
    driver = InstrumentedIDEDriver(sim, disk, transport=transport)
    for s in (100, 200, 300, 400):
        driver.read_sectors(s, 2)
    assert transport.ring_fill == 2
    assert transport.dropped == 2


def test_drain_loop_moves_records_periodically():
    sim = Simulator()
    disk = Disk(sim, rng=np.random.default_rng(0))
    transport = ProcTraceTransport(sim, drain_interval=1.0)
    driver = InstrumentedIDEDriver(sim, disk, transport=transport)
    driver.read_sectors(100, 2)
    sim.run(until=1.5)
    assert len(transport.user_buffer) == 1
    assert transport.ring_fill == 0


def test_sink_called_with_drain_count():
    sim = Simulator()
    counts = []
    disk = Disk(sim, rng=np.random.default_rng(0))
    transport = ProcTraceTransport(sim, drain_interval=1.0,
                                   sink=counts.append)
    driver = InstrumentedIDEDriver(sim, disk, transport=transport)
    driver.read_sectors(100, 2)
    driver.read_sectors(300, 2)
    sim.run(until=1.5)
    assert counts == [2]
