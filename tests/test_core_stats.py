"""Tests for replication statistics."""

import numpy as np
import pytest

from repro.core.stats import (
    MetricCI,
    confidence_interval,
    render_replication,
    replicate,
    t_critical_95,
)


def test_t_critical_values():
    assert t_critical_95(1) == pytest.approx(12.706)
    assert t_critical_95(30) == pytest.approx(2.042)
    assert t_critical_95(1000) == pytest.approx(1.96)
    with pytest.raises(ValueError):
        t_critical_95(0)


def test_confidence_interval_math():
    # n=4, mean 10, sd 2 -> sem 1, t(3)=3.182
    ci = confidence_interval("x", [8.0, 10.0, 10.0, 12.0])
    assert ci.mean == pytest.approx(10.0)
    expected_sem = np.std([8, 10, 10, 12], ddof=1) / 2
    assert ci.half_width == pytest.approx(3.182 * expected_sem)
    assert ci.contains(10.5) or ci.half_width < 0.5


def test_confidence_interval_needs_replications():
    with pytest.raises(ValueError):
        confidence_interval("x", [1.0])


def test_ci_coverage_property():
    # samples from N(5, 1): the CI should usually contain 5
    rng = np.random.default_rng(0)
    hits = 0
    for _ in range(100):
        ci = confidence_interval("x", rng.normal(5, 1, size=10))
        hits += ci.contains(5.0)
    assert hits >= 85   # nominal 95%


def test_replicate_baseline_consistent_across_seeds():
    cis = replicate("baseline", seeds=[1, 2, 3], nnodes=1,
                    runner_kwargs={"baseline_duration": 600.0})
    rate = cis["requests_per_second"]
    assert rate.n == 3
    # the paper's 0.9 req/s falls inside (or near) the interval
    assert abs(rate.mean - 0.9) < 0.3
    # seeds agree: the interval is tight relative to the mean
    assert rate.half_width < 0.5 * rate.mean
    reads = cis["read_fraction"]
    assert reads.mean < 0.03


def test_replicate_validation():
    with pytest.raises(ValueError):
        replicate("baseline", seeds=[1])


def test_render_replication():
    cis = {"x": MetricCI("x", 1.0, 0.1, (0.9, 1.0, 1.1))}
    text = render_replication("demo", cis)
    assert "demo" in text and "3 replications" in text
    assert "±" in text
