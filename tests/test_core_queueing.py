"""Tests for queueing analysis and M/G/1 validation of the disk model."""

import numpy as np
import pytest

from repro.core import TraceDataset
from repro.core.queueing import (
    mg1_mean_response,
    mg1_mean_wait,
    queue_summary,
    validate_disk_against_mg1,
)
from repro.disk import Disk, FIFOScheduler, IORequest
from repro.sim import Simulator


def test_queue_summary_basics():
    ds = TraceDataset.from_records([
        (0.0, 1, 1, 1, 1.0, 0),
        (1.0, 2, 1, 3, 1.0, 0),
        (2.0, 3, 1, 6, 1.0, 0),
    ])
    qs = queue_summary(ds)
    assert qs.mean_pending == pytest.approx(10 / 3)
    assert qs.max_pending == 6
    assert qs.idle_arrival_fraction == pytest.approx(1 / 3)
    with pytest.raises(ValueError):
        queue_summary(TraceDataset.empty())


def test_mg1_reduces_to_mm1_for_exponential_service():
    # For SCV=1 (exponential), W = rho * S / (1 - rho): the M/M/1 wait.
    lam, s = 5.0, 0.1   # rho = 0.5
    w = mg1_mean_wait(lam, s, 1.0)
    assert w == pytest.approx(0.5 * 0.1 / 0.5)
    assert mg1_mean_response(lam, s, 1.0) == pytest.approx(w + s)


def test_mg1_deterministic_service_halves_wait():
    lam, s = 5.0, 0.1
    assert mg1_mean_wait(lam, s, 0.0) == \
        pytest.approx(mg1_mean_wait(lam, s, 1.0) / 2)


def test_mg1_validation_errors():
    with pytest.raises(ValueError):
        mg1_mean_wait(0, 1.0, 1.0)
    with pytest.raises(ValueError):
        mg1_mean_wait(11.0, 0.1, 1.0)   # rho > 1


def run_poisson_disk(arrival_rate, nrequests=3000, seed=0):
    """Drive the simulated disk with Poisson arrivals, random sectors."""
    sim = Simulator()
    disk = Disk(sim, scheduler=FIFOScheduler(),
                rng=np.random.default_rng(seed))
    rng = np.random.default_rng(seed + 1)
    total = disk.total_sectors

    def source():
        for _ in range(nrequests):
            yield sim.timeout(float(rng.exponential(1.0 / arrival_rate)))
            disk.submit(IORequest(sector=int(rng.integers(0, total - 2)),
                                  nsectors=2, is_write=False))

    sim.process(source())
    sim.run()
    return disk


def test_simulated_disk_matches_mg1_at_moderate_load():
    """The disk+FIFO queue behaves like M/G/1 theory predicts."""
    # measure service-time moments first at trivial load
    probe = run_poisson_disk(arrival_rate=0.5, nrequests=800, seed=3)
    service_mean = probe.stats.busy_time / probe.stats.requests
    lat = np.array(probe.stats._latencies)
    # at rho ~ 0.01 latency ~ service time; estimate SCV from it
    service_scv = float(lat.var() / lat.mean() ** 2)

    arrival_rate = 0.5 / service_mean   # target rho = 0.5
    disk = run_poisson_disk(arrival_rate, nrequests=4000, seed=7)
    validation = validate_disk_against_mg1(
        disk, arrival_rate, service_mean=service_mean,
        service_scv=service_scv)
    assert 0.4 < validation.utilization < 0.6
    assert validation.relative_error < 0.15, validation


def test_validation_requires_service():
    sim = Simulator()
    disk = Disk(sim, rng=np.random.default_rng(0))
    with pytest.raises(ValueError):
        validate_disk_against_mg1(disk, 1.0)
