"""Unit and property tests for locality analyses."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import TraceDataset, spatial_locality, temporal_locality
from repro.core.locality import _gini, reuse_fraction


def trace_at_sectors(sectors, dt=1.0):
    return TraceDataset.from_records(
        [(i * dt, s, 1, 1, 1.0, 0) for i, s in enumerate(sectors)])


# -- spatial ---------------------------------------------------------------

def test_band_fractions_sum_to_one():
    ds = trace_at_sectors([10, 150_000, 150_001, 950_000])
    sp = spatial_locality(ds)
    assert sp.band_fraction.sum() == pytest.approx(1.0)


def test_band_assignment():
    ds = trace_at_sectors([99_999, 100_000, 100_001])
    sp = spatial_locality(ds)
    assert sp.band_fraction[0] == pytest.approx(1 / 3)
    assert sp.band_fraction[1] == pytest.approx(2 / 3)


def test_concentrated_trace_follows_80_20():
    # 90% of requests in one band
    sectors = [50_000] * 90 + [i * 100_000 + 5 for i in range(1, 11)]
    sp = spatial_locality(trace_at_sectors(sectors))
    assert sp.follows_80_20
    assert sp.top_20pct_share > 0.8
    assert sp.busiest_band() == (0, pytest.approx(0.9))


def test_uniform_trace_does_not_follow_80_20():
    rng = np.random.default_rng(0)
    sectors = rng.integers(0, 1_024_000, size=2000)
    sp = spatial_locality(trace_at_sectors(sectors))
    assert not sp.follows_80_20
    assert sp.gini < 0.3


def test_spatial_empty_and_bad_args():
    with pytest.raises(ValueError):
        spatial_locality(TraceDataset.empty())
    with pytest.raises(ValueError):
        spatial_locality(trace_at_sectors([1]), band_sectors=0)


def test_gini_extremes():
    assert _gini(np.array([5, 5, 5, 5])) == pytest.approx(0.0, abs=1e-9)
    concentrated = np.zeros(100)
    concentrated[0] = 1000
    assert _gini(concentrated) > 0.95
    assert _gini(np.zeros(4)) == 0.0


# -- temporal ----------------------------------------------------------------

def test_frequencies_per_sector():
    ds = trace_at_sectors([7, 7, 7, 9], dt=1.0)  # duration 3 s
    tl = temporal_locality(ds)
    assert list(tl.sectors) == [7, 9]
    assert tl.frequency[0] == pytest.approx(3 / 3.0)
    assert tl.frequency[1] == pytest.approx(1 / 3.0)


def test_hot_spots_ordering():
    ds = trace_at_sectors([1, 2, 2, 3, 3, 3])
    tl = temporal_locality(ds)
    hot = tl.hot_spots(2)
    assert hot[0][0] == 3
    assert hot[1][0] == 2


def test_mean_interaccess_gap():
    ds = TraceDataset.from_records([
        (0.0, 5, 1, 1, 1.0, 0),
        (2.0, 5, 1, 1, 1.0, 0),
        (6.0, 5, 1, 1, 1.0, 0),
        (1.0, 9, 1, 1, 1.0, 0),
    ])
    tl = temporal_locality(ds)
    i5 = list(tl.sectors).index(5)
    i9 = list(tl.sectors).index(9)
    assert tl.mean_interaccess[i5] == pytest.approx(3.0)  # gaps 2 and 4
    assert tl.mean_interaccess[i9] == np.inf


def test_explicit_window():
    ds = trace_at_sectors([1, 1])
    tl = temporal_locality(ds, window=10.0)
    assert tl.frequency[0] == pytest.approx(0.2)


def test_temporal_empty_raises():
    with pytest.raises(ValueError):
        temporal_locality(TraceDataset.empty())


def test_reuse_fraction():
    assert reuse_fraction(trace_at_sectors([1, 1, 1, 2])) == pytest.approx(0.5)
    assert reuse_fraction(trace_at_sectors([1, 2, 3])) == 0.0
    with pytest.raises(ValueError):
        reuse_fraction(TraceDataset.empty())


# -- properties ----------------------------------------------------------------

@settings(deadline=None, max_examples=30)
@given(st.lists(st.integers(0, 1_024_000), min_size=1, max_size=200))
def test_spatial_invariants(sectors):
    sp = spatial_locality(trace_at_sectors(sectors))
    assert sp.band_fraction.sum() == pytest.approx(1.0)
    assert 0.0 <= sp.gini <= 1.0
    assert 0.0 < sp.top_20pct_share <= 1.0


@settings(deadline=None, max_examples=30)
@given(st.lists(st.integers(0, 10_000), min_size=1, max_size=200))
def test_temporal_invariants(sectors):
    ds = trace_at_sectors(sectors)
    tl = temporal_locality(ds)
    assert len(tl.sectors) == len(set(sectors))
    # total frequency x window = record count
    assert tl.frequency.sum() * tl.window == pytest.approx(len(sectors))
    assert (tl.mean_interaccess > 0).all()
