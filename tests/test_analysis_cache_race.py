"""Concurrent ``analysis.json`` access: two processes, one cache file.

The engine's cache protocol — per-process temp file, atomic
``os.replace``, re-read-and-merge before writing, per-entry signatures
re-checked on every load — must keep the cache valid and the numbers
bit-identical no matter how two engines interleave.  These tests drive
real concurrent processes at the same captured run.
"""

import json
import multiprocessing as mp

import pytest

from repro.analysis import AnalysisEngine, make_pipelines
from repro.analysis.engine import ANALYSIS_NAME
from repro.core.experiments import ExperimentRunner
from repro.store import RunCatalog


@pytest.fixture(scope="module")
def captured_run(tmp_path_factory):
    root = tmp_path_factory.mktemp("race-catalog")
    runner = ExperimentRunner(nnodes=2, seed=4, sink=root)
    runner.run("baseline", duration=100.0)
    return root


def _analyze(root, pipeline_names):
    """Worker entry point (top level so it pickles under spawn)."""
    engine = AnalysisEngine(RunCatalog(root), workers=1, cache=True)
    pipes = make_pipelines(pipeline_names)
    out = engine.analyze("baseline", pipes)
    return {p.name: p.to_json(out[p.name]) for p in pipes}


def _run_concurrently(root, jobs):
    ctx = mp.get_context("spawn")
    with ctx.Pool(len(jobs)) as pool:
        return pool.starmap(_analyze, [(str(root), names)
                                       for names in jobs])


def _expected(root, names):
    engine = AnalysisEngine(RunCatalog(root), workers=1, cache=False)
    pipes = make_pipelines(names)
    out = engine.analyze("baseline", pipes)
    return {p.name: p.to_json(out[p.name]) for p in pipes}


def test_same_pipeline_from_two_processes(captured_run):
    results = _run_concurrently(captured_run,
                                [["metrics"], ["metrics"]])
    truth = _expected(captured_run, ["metrics"])
    assert results[0] == truth
    assert results[1] == truth


def test_disjoint_pipelines_merge_into_one_cache(captured_run):
    jobs = [["metrics", "sizes"], ["spatial", "arrival"]]
    results = _run_concurrently(captured_run, jobs)
    for names, result in zip(jobs, results):
        assert result == _expected(captured_run, names)

    cache_path = captured_run / "baseline" / ANALYSIS_NAME
    cache = json.loads(cache_path.read_text())       # valid JSON
    # both writers' entries survived the concurrent store
    names = {n for names in jobs for n in names}
    cached_names = {key.partition("@")[0] for key in cache["entries"]}
    assert names <= cached_names
    for entry in cache["entries"].values():
        assert entry["signature"]

    # no per-process temp litter left next to the cache
    litter = list((captured_run / "baseline").glob(f"{ANALYSIS_NAME}.*"))
    assert litter == []

    # a fresh engine answers every pipeline from the merged cache
    from repro.obs import MetricsRegistry
    engine = AnalysisEngine(RunCatalog(captured_run), workers=1,
                            cache=True, obs=MetricsRegistry())
    pipes = make_pipelines(sorted(names))
    engine.analyze("baseline", pipes)
    hits = engine.registry.counter("analysis.cache_hits").value
    assert hits >= len(names)
