"""Job dependencies: chains, diamonds, cycles, cascades, recovery.

Most of these run against the bare :class:`JobStore` / scheduler
internals — dependency semantics are pure state-file logic, so no
simulation is needed.  The end-to-end tests at the bottom use a real
daemon with tiny runs to prove the ordering holds across processes and
across a daemon restart.
"""

import pytest

from repro.config import Scenario
from repro.serve import (
    DependencyCycle,
    ExperimentService,
    JobStore,
    ServeClient,
    WorkerPool,
)

SCENARIO = Scenario().with_overrides(
    {"cluster.nnodes": 1, "seed": 11}).to_dict()
DURATION = 60.0


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "jobs")


# -- readiness verdicts --------------------------------------------------------
def test_chain_holds_until_each_dep_finishes(store):
    a = store.create("experiment")
    b = store.create("experiment", depends_on=[a.id])
    c = store.create("experiment", depends_on=[b.id])

    assert store.readiness(store.load(a.id)) == ("ready", None)
    assert store.readiness(store.load(b.id)) == ("held", a.id)
    assert store.readiness(store.load(c.id)) == ("held", b.id)

    store.transition(a.id, "running")
    assert store.readiness(store.load(b.id)) == ("held", a.id)
    store.transition(a.id, "finished")
    assert store.readiness(store.load(b.id)) == ("ready", None)
    assert store.readiness(store.load(c.id)) == ("held", b.id)


def test_diamond_joins_on_both_branches(store):
    a = store.create("experiment")
    b = store.create("experiment", depends_on=[a.id])
    c = store.create("experiment", depends_on=[a.id])
    d = store.create("experiment", depends_on=[b.id, c.id])

    store.transition(a.id, "running")
    store.transition(a.id, "finished")
    assert store.readiness(store.load(b.id)) == ("ready", None)
    assert store.readiness(store.load(c.id)) == ("ready", None)
    assert store.readiness(store.load(d.id))[0] == "held"

    store.transition(b.id, "running")
    store.transition(b.id, "finished")
    assert store.readiness(store.load(d.id)) == ("held", c.id)
    store.transition(c.id, "running")
    store.transition(c.id, "finished")
    assert store.readiness(store.load(d.id)) == ("ready", None)


def test_vanished_dependency_dooms(store):
    a = store.create("experiment")
    b = store.create("experiment", depends_on=[a.id])
    (store.root / f"{a.id}.json").unlink()
    assert store.readiness(store.load(b.id)) == ("doomed", a.id)


# -- cycle rejection at submit -------------------------------------------------
def test_cycle_rejected_at_submit(store):
    a = store.create("experiment")
    b = store.create("experiment", depends_on=[a.id])
    # close the loop behind the store's back (what a hand-edited job
    # file can do); the next submission into the closure must fail
    loop = store.load(a.id)
    loop.depends_on = [b.id]
    store.save(loop)
    with pytest.raises(DependencyCycle, match="dependency cycle"):
        store.create("experiment", depends_on=[b.id])


def test_self_cycle_rejected(store):
    a = store.create("experiment")
    selfish = store.load(a.id)
    selfish.depends_on = [a.id]
    store.save(selfish)
    with pytest.raises(DependencyCycle):
        store.create("experiment", depends_on=[a.id])


# -- failed-dependency cascade -------------------------------------------------
def test_failed_dep_cascades_to_blocked_in_recover(store):
    a = store.create("experiment")
    b = store.create("experiment", depends_on=[a.id])
    c = store.create("experiment", depends_on=[b.id])
    store.transition(a.id, "running")
    store.transition(a.id, "failed", error="boom")

    ready = store.recover()
    assert ready == []
    blocked_b = store.load(b.id)
    assert blocked_b.state == "blocked"
    assert a.id in blocked_b.error
    # the cascade is transitive: c blocks because b blocked
    blocked_c = store.load(c.id)
    assert blocked_c.state == "blocked"
    assert b.id in blocked_c.error
    # each blocked job got a terminal event naming the culprit
    events = store.events(b.id).read()
    assert events[-1]["event"] == "blocked"
    assert events[-1]["dependency"] == a.id


def test_recover_requeues_half_dispatched_dag(store, tmp_path):
    import subprocess
    import sys

    a = store.create("experiment")
    b = store.create("experiment", depends_on=[a.id])
    c = store.create("experiment", depends_on=[b.id])
    store.transition(a.id, "running")
    store.transition(a.id, "finished")
    # b was dispatched, then the daemon died with it: dead worker pid
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    store.transition(b.id, "running", pid=proc.pid)

    ready = store.recover()
    assert [j.id for j in ready] == [b.id, c.id]
    assert store.load(b.id).state == "queued"      # resumes, not lost
    assert store.load(a.id).state == "finished"    # untouched


# -- scheduler ordering --------------------------------------------------------
def test_scheduler_picks_priority_then_readiness(store, tmp_path):
    pool = WorkerPool(tmp_path, store, workers=0)
    low = store.create("experiment", priority=1)
    high = store.create("experiment", priority=5)
    held = store.create("experiment", priority=9, depends_on=[low.id])
    for job in (low, high, held):
        pool.submit(job.id)

    with pool._cond:
        assert pool._pick_ready() == high.id       # held outranks, but waits
    store.transition(low.id, "running")
    store.transition(low.id, "finished")
    with pool._cond:
        assert pool._pick_ready() == held.id       # now runnable, and first

    # a doomed job is settled right in the scheduling pass
    doomed = store.create("experiment", priority=99,
                          depends_on=[high.id])
    pool.submit(doomed.id)
    store.transition(high.id, "running")
    store.transition(high.id, "failed", error="boom")
    with pool._cond:
        assert pool._pick_ready() == held.id       # doomed one settled
    assert store.load(doomed.id).state == "blocked"


# -- end to end ----------------------------------------------------------------
def test_dependent_starts_only_after_dep_finishes(tmp_path):
    service = ExperimentService(tmp_path / "root", workers=2).start()
    try:
        client = ServeClient(service.url)
        first = client.submit(scenario=SCENARIO, duration=DURATION)
        second = client.submit(scenario=SCENARIO, duration=DURATION,
                               priority=10, depends_on=[first["id"]])
        done = client.wait(second["id"], timeout=180)
        dep = client.job(first["id"])
        assert dep["state"] == "finished"
        assert done["state"] == "finished"
        # despite two free workers and a higher priority, the dependent
        # never starts before its dependency has finished
        assert done["started"] >= dep["finished"]
    finally:
        service.shutdown()


def test_failed_dep_blocks_dependent_end_to_end(tmp_path):
    service = ExperimentService(tmp_path / "root", workers=1).start()
    try:
        client = ServeClient(service.url)
        # a spec no API submission can produce: fails in the worker
        bad = service.store.create("experiment",
                                   {"experiment": "does-not-exist"})
        service.pool.submit(bad.id)
        child = client.submit(scenario=SCENARIO, duration=DURATION,
                              depends_on=[bad.id])
        final = client.wait(child["id"], timeout=120)
        assert final["state"] == "blocked"
        assert bad.id in final["error"]
        assert client.job(bad.id)["state"] == "failed"
    finally:
        service.shutdown()


def test_dag_survives_daemon_restart(tmp_path):
    root = tmp_path / "root"
    first = ExperimentService(root, workers=0).start()   # accept-only
    client = ServeClient(first.url)
    head = client.submit(scenario=SCENARIO, duration=DURATION)
    tail = client.submit(scenario=SCENARIO, duration=DURATION,
                         depends_on=[head["id"]])
    first.shutdown()                                     # daemon dies

    second = ExperimentService(root, workers=2).start()
    try:
        client = ServeClient(second.url)
        done = client.wait(tail["id"], timeout=180)
        dep = client.job(head["id"])
        assert dep["state"] == "finished"
        assert done["state"] == "finished"
        assert done["started"] >= dep["finished"]
        assert done["depends_on"] == [head["id"]]
    finally:
        second.shutdown()
