"""Tests for the command-line driver."""

import pytest

from repro.cli import build_parser, main


def test_parser_accepts_experiments():
    parser = build_parser()
    args = parser.parse_args(["baseline", "--nodes", "2"])
    assert args.experiment == "baseline"
    assert args.nodes == 2


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["quake"])


def test_cli_baseline_with_figure(capsys):
    rc = main(["baseline", "--nodes", "1", "--duration", "120",
               "--figures", "1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out


def test_cli_figure_needs_matching_experiment(capsys):
    rc = main(["baseline", "--nodes", "1", "--duration", "60",
               "--figures", "5"])
    assert rc == 2


def test_cli_unknown_figure(capsys):
    rc = main(["baseline", "--nodes", "1", "--duration", "60",
               "--figures", "11"])
    assert rc == 2


def test_cli_table_and_csv(tmp_path, capsys):
    rc = main(["ppm", "--nodes", "1", "--table",
               "--csv-dir", str(tmp_path), "--figures", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert (tmp_path / "figure2.csv").exists()
    assert (tmp_path / "trace_ppm.csv").exists()


def test_cli_sink_writes_run_catalog(tmp_path, capsys):
    root = tmp_path / "runs"
    rc = main(["baseline", "--nodes", "1", "--duration", "60",
               "--sink", str(root)])
    assert rc == 0
    assert (root / "baseline" / "manifest.json").exists()
    assert (root / "baseline" / "node_0000.rpt").exists()
    from repro.store import RunCatalog
    assert RunCatalog(root).runs() == ["baseline"]


def test_cli_parallel_all(tmp_path, capsys):
    rc = main(["all", "--nodes", "1", "--duration", "200", "--parallel",
               "--table", "--figures"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    for name in ("baseline", "ppm", "wavelet", "nbody", "combined"):
        assert name in out


def test_cli_sweep_unknown_experiment_exits_2(capsys):
    rc = main(["sweep", "--on", "bogus", "--grid", "scheduler=fifo"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "unknown experiment 'bogus'" in err
    assert "Traceback" not in err


def test_cli_sweep_bad_axis_exits_2(capsys):
    rc = main(["sweep", "--grid", "not-an-axis"])
    assert rc == 2
    err = capsys.readouterr().err
    assert err.startswith("sweep failed:")
    assert "Traceback" not in err


def test_cli_sweep_worker_failure_is_one_line(capsys, monkeypatch):
    import repro.config

    def boom(*args, **kwargs):
        raise RuntimeError("worker exploded")

    monkeypatch.setattr(repro.config, "run_sweep", boom)
    rc = main(["sweep", "--on", "baseline", "--nodes", "1",
               "--grid", "scheduler=fifo"])
    assert rc == 1
    err = capsys.readouterr().err
    assert "sweep failed: RuntimeError: worker exploded" in err
    assert "Traceback" not in err
