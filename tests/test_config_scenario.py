"""Scenario tree: round-trips, validation paths, registry resolution."""

import dataclasses

import pytest

from repro.config import (
    ConfigError,
    DriveCacheConfig,
    NodeConfig,
    Scenario,
)
from repro.disk import (
    CLookScheduler,
    DriveCache,
    FIFOScheduler,
    NullDriveCache,
    SCHEDULERS,
    DRIVE_CACHES,
)
from repro.kernel import NodeParams


# -- defaults reproduce the paper's stack -------------------------------------
def test_default_scenario_is_valid_and_matches_node_params():
    scenario = Scenario().validate()
    assert scenario.node_params() == NodeParams()
    assert scenario.cluster.nnodes == 16
    assert scenario.workload.mix == ("ppm", "wavelet", "nbody")


def test_default_disk_stack_builds_historical_components():
    disk = Scenario().node.disk
    assert isinstance(disk.build_scheduler(), CLookScheduler)
    cache = disk.build_cache()
    assert isinstance(cache, DriveCache)
    assert (cache.nsegments, cache.segment_sectors,
            cache.lookahead_sectors) == (4, 64, 32)


def test_node_params_round_trip_through_config():
    params = NodeParams(ram_mb=32, buffer_cache_kb=4096,
                        max_readahead_kb=32)
    assert NodeConfig.from_node_params(params).to_node_params() == params


# -- serialization round trips ------------------------------------------------
@pytest.fixture
def nondefault_scenario():
    return Scenario().with_overrides({
        "name": "ablation",
        "seed": 7,
        "cluster.nnodes": 4,
        "node.disk.scheduler.kind": "fifo",
        "node.disk.cache.nsegments": 8,
        "node.max_readahead_kb": 64,
        "workload.mix": ("wavelet", "nbody"),
        "experiment.baseline_duration": 120.0,
    })


def test_toml_round_trip_identical(nondefault_scenario):
    text = nondefault_scenario.to_toml()
    assert Scenario.from_toml(text) == nondefault_scenario


def test_json_round_trip_identical(nondefault_scenario):
    text = nondefault_scenario.to_json()
    assert Scenario.from_json(text) == nondefault_scenario


def test_save_load_by_suffix(tmp_path, nondefault_scenario):
    for fname in ("s.toml", "s.json"):
        path = nondefault_scenario.save(tmp_path / fname)
        assert Scenario.load(path) == nondefault_scenario


def test_workload_params_survive_toml(tmp_path):
    scenario = Scenario.from_dict(
        {"workload": {"params": {"wavelet": {"nnodes": 2}}}})
    again = Scenario.from_toml(scenario.to_toml())
    assert again.workload.params_for("wavelet") == {"nnodes": 2}


# -- validation errors name the exact path ------------------------------------
def test_unknown_scheduler_names_exact_path():
    with pytest.raises(ConfigError) as err:
        Scenario().with_override("node.disk.scheduler.kind",
                                 "elevator3000").validate()
    assert err.value.path == "scenario.node.disks[0].scheduler.kind"
    assert "elevator3000" in str(err.value)
    assert "clook" in str(err.value)   # the menu is listed


def test_unknown_drive_cache_names_exact_path():
    with pytest.raises(ConfigError) as err:
        Scenario().with_override("node.disk.cache.kind", "dram").validate()
    assert err.value.path == "scenario.node.disks[0].cache.kind"


def test_unknown_workload_names_exact_path():
    with pytest.raises(ConfigError) as err:
        Scenario().with_override("workload.mix",
                                 ("ppm", "doom")).validate()
    assert err.value.path == "scenario.workload.mix[1]"


def test_out_of_range_field_names_exact_path():
    with pytest.raises(ConfigError) as err:
        Scenario().with_override("cluster.nnodes", 0).validate()
    assert err.value.path == "scenario.cluster.nnodes"
    with pytest.raises(ConfigError) as err:
        Scenario().with_override("node.disk.media_error_rate",
                                 1.5).validate()
    assert err.value.path == "scenario.node.disks[0].media_error_rate"


def test_unknown_key_rejected_with_path():
    with pytest.raises(ConfigError) as err:
        Scenario.from_dict({"cluster": {"nodes": 4}})
    assert err.value.path == "scenario.cluster.nodes"


def test_type_mismatch_rejected_with_path():
    with pytest.raises(ConfigError) as err:
        Scenario.from_dict({"cluster": {"nnodes": "many"}})
    assert err.value.path == "scenario.cluster.nnodes"


def test_unknown_workload_param_field_named():
    with pytest.raises(ConfigError) as err:
        Scenario.from_dict(
            {"workload": {"params": {"ppm": {"warp": 9}}}})
    assert err.value.path == "scenario.workload.params.ppm.warp"


# -- overrides ----------------------------------------------------------------
def test_with_override_coerces_cli_strings():
    scenario = Scenario().with_overrides({
        "cluster.nnodes": "8",
        "node.disk.cache.nsegments": "0",
        "cluster.housekeeping": "false",
        "experiment.flush_grace": "2.5",
    })
    assert scenario.cluster.nnodes == 8
    assert scenario.node.disk.cache.nsegments == 0
    assert scenario.cluster.housekeeping is False
    assert scenario.experiment.flush_grace == 2.5


def test_with_override_unknown_path_raises():
    with pytest.raises(ConfigError) as err:
        Scenario().with_override("node.disk.rpm", 7200)
    # the legacy 'disk' alias resolves to the canonical disks[0] path
    assert err.value.path == "scenario.node.disks[0].rpm"


# -- fingerprints -------------------------------------------------------------
def test_fingerprint_ignores_name_and_seed_but_not_stack():
    base = Scenario()
    relabeled = dataclasses.replace(base, name="run-42", seed=99)
    assert relabeled.fingerprint() == base.fingerprint()
    assert base.with_override("node.disk.scheduler.kind",
                              "fifo").fingerprint() != base.fingerprint()


# -- registry-backed component selection --------------------------------------
def test_zero_segments_resolves_to_null_cache():
    cache = DriveCacheConfig(nsegments=0).build()
    assert isinstance(cache, NullDriveCache)
    assert cache.lookahead_sectors == 0


def test_registries_expose_builtins():
    assert set(SCHEDULERS.names()) >= {"clook", "fifo", "scan", "sstf"}
    assert set(DRIVE_CACHES.names()) >= {"segmented", "none"}
    assert isinstance(SCHEDULERS.create("fifo"), FIFOScheduler)


# -- engine selection ---------------------------------------------------------
def test_engine_defaults_to_calendar_and_round_trips():
    scenario = Scenario().validate()
    assert scenario.engine.event_queue == "calendar"
    heap = scenario.with_override("engine.event_queue", "heap")
    assert heap.engine.event_queue == "heap"
    assert Scenario.from_dict(heap.to_dict()) == heap
    assert Scenario.from_toml(heap.to_toml()) == heap


def test_unknown_event_queue_names_exact_path():
    with pytest.raises(ConfigError) as err:
        Scenario().with_override("engine.event_queue",
                                 "splaytree").validate()
    assert err.value.path == "scenario.engine.event_queue"
    assert "splaytree" in str(err.value)
    assert "heap" in str(err.value)   # the menu is listed


def test_event_queue_sweep_alias_resolves():
    from repro.config import GRID_ALIASES, parse_axis_spec
    axis = parse_axis_spec("event_queue=calendar,heap")
    assert axis.path == GRID_ALIASES["event_queue"] == "engine.event_queue"
    assert axis.values == ("calendar", "heap")
