"""Unit tests for the disk service-time model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.disk import DiskServiceModel, IORequest


@pytest.fixture
def model():
    return DiskServiceModel()


def test_rotation_time_matches_rpm(model):
    assert model.rotation_time == pytest.approx(60.0 / 4500.0)


def test_zero_seek_for_same_cylinder(model):
    assert model.seek_time(100, 100) == 0.0


def test_seek_monotonic_in_distance(model):
    times = [model.seek_time(0, d) for d in (1, 10, 100, 1000)]
    assert times == sorted(times)
    assert times[0] > 0


def test_seek_symmetric(model):
    assert model.seek_time(10, 500) == model.seek_time(500, 10)


def test_transfer_time_linear_in_sectors(model):
    t2 = model.transfer_time(2)
    t8 = model.transfer_time(8)
    assert t8 == pytest.approx(4 * t2)


def test_transfer_rejects_nonpositive(model):
    with pytest.raises(ValueError):
        model.transfer_time(0)


def test_track_transfer_rate_is_era_plausible(model):
    # A mid-90s IDE drive moved roughly 1-4 MB/s off the media.
    assert 0.5e6 < model.track_transfer_rate < 8e6


def test_average_random_seek_near_nominal(model):
    # Calibration target: ~14 ms average seek, within a loose band.
    assert 0.008 < model.average_random_seek() < 0.025


def test_average_random_seek_matches_monte_carlo(model):
    # The closed form is E[seek(|X - Y|)] for X, Y uniform over the
    # cylinders — E[sqrt(d)] = (8/15) sqrt(C) and E[d] = C/3, *not*
    # seek(E[d]) (the Jensen-biased version reads ~3.8% high).
    rng = np.random.default_rng(5)
    c = model.geometry.cylinders
    d = np.abs(rng.integers(0, c, 200_000) - rng.integers(0, c, 200_000))
    empirical = np.where(
        d == 0, 0.0,
        model.seek_settle + model.seek_sqrt_coeff * np.sqrt(d)
        + model.seek_linear_coeff * d).mean()
    assert model.average_random_seek() == pytest.approx(empirical, rel=0.005)


def test_average_random_seek_below_jensen_biased_value(model):
    # sqrt is concave, so the true mean sits strictly below seek(E[d]).
    c = model.geometry.cylinders
    biased = (model.seek_settle + model.seek_sqrt_coeff * np.sqrt(c / 3.0)
              + model.seek_linear_coeff * (c / 3.0))
    assert model.average_random_seek() < biased


def test_service_time_includes_all_components(model):
    rng = np.random.default_rng(1)
    req = IORequest(sector=500_000, nsectors=2, is_write=False)
    t = model.service_time(req, head_cylinder=0, rng=rng)
    lower = model.controller_overhead + model.seek_time(
        0, model.geometry.cylinder_of(500_000)) + model.transfer_time(2)
    assert t >= lower
    assert t <= lower + model.rotation_time


def test_rotational_latency_bounded(model):
    rng = np.random.default_rng(2)
    draws = [model.rotational_latency(rng) for _ in range(200)]
    assert all(0 <= d < model.rotation_time for d in draws)
    # Mean of uniform(0, rot) should be near rot/2.
    assert np.mean(draws) == pytest.approx(model.rotation_time / 2, rel=0.25)


@given(st.integers(min_value=0, max_value=1015),
       st.integers(min_value=0, max_value=1015))
def test_seek_time_nonnegative_property(a, b):
    model = DiskServiceModel()
    assert model.seek_time(a, b) >= 0.0


# -- precomputed tables vs the scalar formulas --------------------------------
def test_seek_table_matches_scalar_formula(model):
    import math
    for d in range(model.geometry.cylinders):
        expected = 0.0 if d == 0 else (
            model.seek_settle + model.seek_sqrt_coeff * math.sqrt(d)
            + model.seek_linear_coeff * d)
        assert model.tables.seek[d] == expected


def test_transfer_table_matches_zone_rates(model):
    geo = model.geometry
    for cyl in (0, geo.cylinders // 2, geo.cylinders - 1):
        rate = geo.sectors_per_track_at(cyl) * 512 / model.rotation_time
        assert model.transfer_time_at(8, cyl) == 8 * 512 / rate


def test_service_time_bitwise_equals_scalar_path(model):
    # The hot path (table lookups) must reproduce the per-request math
    # bit for bit — this is what keeps the golden runs byte-identical.
    import math
    rng = np.random.default_rng(11)
    draws = np.random.default_rng(11)
    geo = model.geometry
    sectors = np.random.default_rng(3).integers(
        0, geo.total_sectors - 8, size=500)
    for sector in sectors.tolist():
        req = IORequest(sector=sector, nsectors=8, is_write=False)
        head = sector % geo.cylinders
        target = sector // geo.sectors_per_cylinder
        d = abs(target - head)
        seek = 0.0 if d == 0 else (
            model.seek_settle + model.seek_sqrt_coeff * math.sqrt(d)
            + model.seek_linear_coeff * d)
        rate = geo.sectors_per_track_at(target) * 512 / model.rotation_time
        expected = (model.controller_overhead + seek
                    + float(draws.random()) * model.rotation_time
                    + req.nsectors * 512 / rate)
        assert model.service_time(req, head, rng) == expected
