"""Unit tests for the disk service-time model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.disk import DiskServiceModel, IORequest


@pytest.fixture
def model():
    return DiskServiceModel()


def test_rotation_time_matches_rpm(model):
    assert model.rotation_time == pytest.approx(60.0 / 4500.0)


def test_zero_seek_for_same_cylinder(model):
    assert model.seek_time(100, 100) == 0.0


def test_seek_monotonic_in_distance(model):
    times = [model.seek_time(0, d) for d in (1, 10, 100, 1000)]
    assert times == sorted(times)
    assert times[0] > 0


def test_seek_symmetric(model):
    assert model.seek_time(10, 500) == model.seek_time(500, 10)


def test_transfer_time_linear_in_sectors(model):
    t2 = model.transfer_time(2)
    t8 = model.transfer_time(8)
    assert t8 == pytest.approx(4 * t2)


def test_transfer_rejects_nonpositive(model):
    with pytest.raises(ValueError):
        model.transfer_time(0)


def test_track_transfer_rate_is_era_plausible(model):
    # A mid-90s IDE drive moved roughly 1-4 MB/s off the media.
    assert 0.5e6 < model.track_transfer_rate < 8e6


def test_average_random_seek_near_nominal(model):
    # Calibration target: ~14 ms average seek, within a loose band.
    assert 0.008 < model.average_random_seek() < 0.025


def test_service_time_includes_all_components(model):
    rng = np.random.default_rng(1)
    req = IORequest(sector=500_000, nsectors=2, is_write=False)
    t = model.service_time(req, head_cylinder=0, rng=rng)
    lower = model.controller_overhead + model.seek_time(
        0, model.geometry.cylinder_of(500_000)) + model.transfer_time(2)
    assert t >= lower
    assert t <= lower + model.rotation_time


def test_rotational_latency_bounded(model):
    rng = np.random.default_rng(2)
    draws = [model.rotational_latency(rng) for _ in range(200)]
    assert all(0 <= d < model.rotation_time for d in draws)
    # Mean of uniform(0, rot) should be near rot/2.
    assert np.mean(draws) == pytest.approx(model.rotation_time / 2, rel=0.25)


@given(st.integers(min_value=0, max_value=1015),
       st.integers(min_value=0, max_value=1015))
def test_seek_time_nonnegative_property(a, b):
    model = DiskServiceModel()
    assert model.seek_time(a, b) >= 0.0
