"""Round-trip, predicate-pushdown, and crash-recovery tests for the
chunked trace store."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.driver import TRACE_DTYPE, TraceRecord
from repro.store import (
    StoreFormatError,
    TracePredicate,
    TraceReader,
    TraceWriter,
    read_trace,
    write_trace,
)


def make_records(n, seed=0, nodes=4):
    rng = np.random.default_rng(seed)
    arr = np.empty(n, dtype=TRACE_DTYPE)
    arr["time"] = np.sort(rng.exponential(0.01, n).cumsum())
    arr["sector"] = rng.integers(0, 1_000_000, n)
    arr["write"] = rng.integers(0, 2, n)
    arr["pending"] = rng.integers(0, 30, n)
    arr["size_kb"] = rng.choice([1.0, 4.0, 32.0], n)
    arr["node"] = rng.integers(0, nodes, n)
    return arr


# -- basic round trips ---------------------------------------------------------
def test_empty_file_roundtrip(tmp_path):
    path = tmp_path / "empty.rpt"
    with TraceWriter(path):
        pass
    with TraceReader(path) as reader:
        assert len(reader) == 0
        assert reader.chunk_count == 0
        assert reader.read().dtype == TRACE_DTYPE
        assert reader.time_span == (0.0, 0.0)


def test_roundtrip_is_bit_exact_across_chunks(tmp_path):
    arr = make_records(10_000)
    path = tmp_path / "t.rpt"
    write_trace(path, arr, chunk_records=512)
    with TraceReader(path) as reader:
        assert reader.chunk_count == 10_000 // 512 + 1
        assert np.array_equal(reader.read(), arr)
        assert not reader.recovered


def test_append_single_records_and_tuples(tmp_path):
    path = tmp_path / "t.rpt"
    with TraceWriter(path, chunk_records=3) as writer:
        writer.append(TraceRecord(1.0, 10, True, 2, 4.0, node=1))
        writer.append((2.0, 20, 0, 1, 1.0, 0))
        writer.append(TraceRecord(3.0, 30, False, 0, 2.0, node=2))
        writer.append((4.0, 40, 1, 5, 8.0, 3))
    arr = read_trace(path)
    assert len(arr) == 4
    assert list(arr["sector"]) == [10, 20, 30, 40]
    assert list(arr["node"]) == [1, 0, 2, 3]


def test_writer_memory_stays_bounded(tmp_path):
    """append_array never retains more than one chunk of pending records."""
    arr = make_records(5_000)
    with TraceWriter(tmp_path / "t.rpt", chunk_records=256) as writer:
        for start in range(0, len(arr), 700):
            writer.append_array(arr[start:start + 700])
            assert writer.pending_records < 256
    assert writer.records_written == len(arr)


def test_writer_rejects_wrong_dtype_and_use_after_close(tmp_path):
    writer = TraceWriter(tmp_path / "t.rpt")
    with pytest.raises(TypeError):
        writer.append_array(np.zeros(3))
    writer.close()
    writer.close()  # idempotent
    with pytest.raises(ValueError):
        writer.append(TraceRecord(1.0, 1, True, 0, 1.0))


def test_reader_rejects_non_store_files(tmp_path):
    path = tmp_path / "junk.rpt"
    path.write_bytes(b"definitely not a trace store file")
    with pytest.raises(StoreFormatError):
        TraceReader(path)


# -- predicate pushdown --------------------------------------------------------
def test_time_window_skips_chunks(tmp_path):
    arr = make_records(20_000)
    path = tmp_path / "t.rpt"
    write_trace(path, arr, chunk_records=1_000)  # 20 chunks
    t = arr["time"]
    t0, t1 = float(t[9_000]), float(t[11_000])  # ~10% of records
    with TraceReader(path) as reader:
        got = reader.read(t0=t0, t1=t1)
        assert np.array_equal(got, arr[(t >= t0) & (t < t1)])
        # a 10% window over time-sorted chunks touches ~3 of 20
        assert reader.chunks_read < reader.chunk_count // 2


def test_node_and_direction_pushdown(tmp_path):
    # segregate nodes in time so node chunks are skippable
    a = make_records(3_000, seed=1, nodes=1)
    b = make_records(3_000, seed=2, nodes=1)
    b["node"] = 1
    b["time"] += float(a["time"].max()) + 1.0
    arr = np.concatenate([a, b])
    path = tmp_path / "t.rpt"
    write_trace(path, arr, chunk_records=500)
    with TraceReader(path) as reader:
        got = reader.read(node=1)
        assert np.array_equal(got, arr[arr["node"] == 1])
        assert reader.chunks_read <= reader.chunk_count // 2 + 1
    with TraceReader(path) as reader:
        reads = reader.read(write=False)
        assert np.array_equal(reads, arr[arr["write"] == 0])


def test_predicate_admits_chunk_edges():
    from repro.store.format import summarize
    arr = make_records(100)
    meta = summarize(arr, offset=0, raw=1, comp=1, crc=0)
    t_lo, t_hi = float(arr["time"].min()), float(arr["time"].max())
    # half-open window semantics match TraceDataset.between
    assert not TracePredicate(t1=t_lo).admits_chunk(meta)
    assert TracePredicate(t0=t_hi).admits_chunk(meta)
    assert not TracePredicate(t0=t_hi + 1e-9).admits_chunk(meta)
    assert TracePredicate(node=int(arr["node"][0])).admits_chunk(meta)
    assert not TracePredicate(node=9999).admits_chunk(meta)


# -- crash recovery ------------------------------------------------------------
def test_truncated_file_recovers_complete_chunks(tmp_path):
    arr = make_records(10_000)
    path = tmp_path / "t.rpt"
    write_trace(path, arr, chunk_records=1_000)
    blob = path.read_bytes()
    for fraction in (0.35, 0.8, 0.99):
        trunc = tmp_path / f"trunc_{fraction}.rpt"
        trunc.write_bytes(blob[:int(len(blob) * fraction)])
        with TraceReader(trunc) as reader:
            assert reader.recovered
            got = reader.read()
            # every surviving chunk is an exact prefix of the original
            assert len(got) % 1_000 == 0
            assert np.array_equal(got, arr[:len(got)])


def test_unfinalised_writer_file_is_recoverable(tmp_path):
    """A writer that never reaches close() (crash) loses only the pending
    partial chunk."""
    arr = make_records(2_500)
    path = tmp_path / "t.rpt"
    writer = TraceWriter(path, chunk_records=1_000)
    writer.append_array(arr)
    writer._fh.flush()  # simulate the OS having the spilled chunks
    # no close(): no footer, 500 pending records lost
    with TraceReader(path) as reader:
        assert reader.recovered
        assert np.array_equal(reader.read(), arr[:2_000])
    writer.close()
    with TraceReader(path) as reader:
        assert not reader.recovered
        assert np.array_equal(reader.read(), arr)


def test_recovered_reader_reports_torn_tail_bytes(tmp_path):
    arr = make_records(2_500)
    path = tmp_path / "t.rpt"
    write_trace(path, arr, chunk_records=1_000)
    blob = path.read_bytes()
    trunc = tmp_path / "trunc.rpt"
    trunc.write_bytes(blob[:len(blob) - 37])
    with TraceReader(trunc) as reader:
        assert reader.recovered
        # everything past the last complete chunk counts as torn tail
        assert reader.tail_bytes > 0
        assert reader.tail_bytes < len(blob)
    with TraceReader(path) as reader:
        assert not reader.recovered
        assert reader.tail_bytes == 0


def test_torn_header_raises_store_error_not_unicode_error(tmp_path):
    """A file truncated (or torn) inside the header JSON must surface as a
    clean StoreFormatError, never a raw UnicodeDecodeError."""
    arr = make_records(100)
    path = tmp_path / "t.rpt"
    write_trace(path, arr)
    blob = bytearray(path.read_bytes())
    # corrupt the JSON region of the header with non-UTF-8 garbage while
    # keeping the fixed header (magic/version/jlen) intact
    from repro.store.format import HEADER_FIXED_SIZE
    for i in range(HEADER_FIXED_SIZE, HEADER_FIXED_SIZE + 16):
        blob[i] = 0xFF
    path.write_bytes(bytes(blob))
    with pytest.raises(StoreFormatError):
        TraceReader(path)
    # valid JSON that is not a header object is rejected the same way
    import json as _json
    import struct as _struct
    payload = _json.dumps([1, 2, 3]).encode()
    from repro.store.format import MAGIC, VERSION
    bad = _struct.pack("<8sHHI", MAGIC, VERSION, 0, len(payload)) + payload
    path.write_bytes(bad)
    with pytest.raises(StoreFormatError):
        TraceReader(path)


def test_reader_closes_handle_when_init_fails(tmp_path):
    from pathlib import Path
    path = tmp_path / "bogus.rpt"
    path.write_bytes(b"\xff" * 64)
    closed = []
    real_open = Path.open

    def spy_open(self, *a, **kw):
        fh = real_open(self, *a, **kw)
        if self == path:
            orig_close = fh.close
            fh.close = lambda: (closed.append(True), orig_close())
        return fh

    import unittest.mock as mock
    with mock.patch.object(Path, "open", spy_open):
        with pytest.raises(StoreFormatError):
            TraceReader(path)
    assert closed, "TraceReader leaked its file handle on init failure"


def test_trace_info_cli_reports_truncated_file(tmp_path, capsys):
    from repro.store.cli import main as trace_main
    arr = make_records(2_500)
    path = tmp_path / "t.rpt"
    write_trace(path, arr, chunk_records=1_000)
    blob = path.read_bytes()
    trunc = tmp_path / "trunc.rpt"
    trunc.write_bytes(blob[:len(blob) - 53])
    assert trace_main(["info", str(trunc)]) == 0
    out = capsys.readouterr().out
    assert "recovered: no footer" in out
    assert "torn tail" in out
    # a header torn beyond recovery is a clean error and exit 1
    torn = tmp_path / "torn.rpt"
    torn.write_bytes(blob[:8] + b"\xff" * 32)
    assert trace_main(["info", str(torn)]) == 1
    err = capsys.readouterr().err
    assert "torn.rpt" in err


def test_corrupt_chunk_payload_fails_crc(tmp_path):
    arr = make_records(1_000)
    path = tmp_path / "t.rpt"
    write_trace(path, arr, chunk_records=1_000)
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF  # flip a bit mid-payload
    path.write_bytes(bytes(blob))
    with TraceReader(path) as reader:
        with pytest.raises(StoreFormatError):
            reader.read()


# -- property tests ------------------------------------------------------------
records_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        st.integers(min_value=0, max_value=2**50),
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=60_000),
        st.floats(min_value=0, max_value=1e4, allow_nan=False,
                  width=32),
        st.integers(min_value=0, max_value=255),
    ),
    max_size=200)


@settings(max_examples=40, deadline=None)
@given(rows=records_strategy, chunk_records=st.integers(1, 64))
def test_property_roundtrip(tmp_path_factory, rows, chunk_records):
    arr = np.array(rows, dtype=TRACE_DTYPE) if rows \
        else np.zeros(0, dtype=TRACE_DTYPE)
    path = tmp_path_factory.mktemp("store") / "t.rpt"
    write_trace(path, arr, chunk_records=chunk_records)
    with TraceReader(path) as reader:
        assert np.array_equal(reader.read(), arr)


@settings(max_examples=25, deadline=None)
@given(rows=records_strategy,
       chunk_records=st.integers(1, 32),
       t0=st.floats(min_value=0, max_value=1e6, allow_nan=False),
       span=st.floats(min_value=0, max_value=1e6, allow_nan=False),
       node=st.integers(min_value=0, max_value=255),
       write=st.sampled_from([None, True, False]))
def test_property_predicates_match_full_scan(tmp_path_factory, rows,
                                             chunk_records, t0, span,
                                             node, write):
    arr = np.array(rows, dtype=TRACE_DTYPE) if rows \
        else np.zeros(0, dtype=TRACE_DTYPE)
    path = tmp_path_factory.mktemp("store") / "t.rpt"
    write_trace(path, arr, chunk_records=chunk_records)
    pred = TracePredicate(t0=t0, t1=t0 + span, node=node, write=write)
    expected = arr[pred.mask(arr)] if len(arr) \
        else np.zeros(0, dtype=TRACE_DTYPE)
    with TraceReader(path) as reader:
        got = reader.read(t0=t0, t1=t0 + span, node=node, write=write)
    assert np.array_equal(got, expected)


@settings(max_examples=25, deadline=None)
@given(rows=records_strategy, chunk_records=st.integers(1, 32),
       cut=st.floats(min_value=0.0, max_value=1.0))
def test_property_truncation_yields_exact_prefix(tmp_path_factory, rows,
                                                 chunk_records, cut):
    arr = np.array(rows, dtype=TRACE_DTYPE) if rows \
        else np.zeros(0, dtype=TRACE_DTYPE)
    base = tmp_path_factory.mktemp("store")
    path = base / "t.rpt"
    write_trace(path, arr, chunk_records=chunk_records)
    blob = path.read_bytes()
    trunc = base / "trunc.rpt"
    trunc.write_bytes(blob[:int(len(blob) * cut)])
    try:
        reader = TraceReader(trunc)
    except StoreFormatError:
        return  # cut inside the file header itself: nothing to recover
    with reader:
        got = reader.read()
        assert len(got) % chunk_records == 0 or len(got) == len(arr)
        assert np.array_equal(got, arr[:len(got)])
