"""Unit and integration tests for workload synthesis and replay."""

import numpy as np
import pytest

from repro.core import TraceDataset, compute_metrics
from repro.core.sizes import size_histogram
from repro.synth import WorkloadModel, fit_workload_model, replay_trace
from repro.synth.replay import compare_schedulers


def reference_trace(n=2000, seed=0):
    """A synthetic 'measured' trace with known structure."""
    rng = np.random.default_rng(seed)
    times = np.sort(rng.uniform(0, 1000.0, size=n))
    sizes = rng.choice([1.0, 2.0, 4.0, 16.0], p=[0.5, 0.1, 0.3, 0.1], size=n)
    reads = np.where(sizes >= 4.0, rng.random(n) < 0.6, rng.random(n) < 0.05)
    hot = rng.choice([44_000, 44_002, 96_010], size=n)
    cold = rng.integers(240_000, 360_000, size=n)
    sectors = np.where(rng.random(n) < 0.6, hot, cold)
    rows = [(float(t), int(s), int(not r), 1, float(kb), 0)
            for t, s, r, kb in zip(times, sectors, reads, sizes)]
    return TraceDataset.from_records(rows)


@pytest.fixture(scope="module")
def model():
    return fit_workload_model(reference_trace())


def test_fit_requires_records():
    with pytest.raises(ValueError):
        fit_workload_model(TraceDataset.empty())


def test_fitted_probabilities_are_distributions(model):
    assert model.size_probs.sum() == pytest.approx(1.0)
    assert model.hot_probs.sum() == pytest.approx(1.0)
    if len(model.band_probs):
        assert model.band_probs.sum() == pytest.approx(1.0)
    assert 0.0 <= model.hot_share <= 1.0
    assert ((0.0 <= model.read_prob_by_size)
            & (model.read_prob_by_size <= 1.0)).all()


def test_fitted_rate_matches_source(model):
    assert model.arrival_rate == pytest.approx(2.0, rel=0.05)  # 2000/1000s


def test_generated_trace_matches_rate_and_mix(model):
    synth = model.generate(1000.0, rng=np.random.default_rng(1))
    assert len(synth) == pytest.approx(2000, rel=0.15)
    ref_m = compute_metrics(reference_trace())
    syn_m = compute_metrics(synth)
    assert syn_m.read_fraction == pytest.approx(ref_m.read_fraction, abs=0.05)
    assert syn_m.mean_size_kb == pytest.approx(ref_m.mean_size_kb, rel=0.1)


def test_generated_size_histogram_shape(model):
    synth = model.generate(1000.0, rng=np.random.default_rng(2))
    ref_hist = size_histogram(reference_trace())
    syn_hist = size_histogram(synth)
    assert set(syn_hist) <= set(ref_hist)
    # dominant size preserved
    assert max(syn_hist, key=syn_hist.get) == max(ref_hist, key=ref_hist.get)


def test_generated_hot_spots_preserved(model):
    synth = model.generate(1000.0, rng=np.random.default_rng(3))
    sectors, counts = np.unique(synth.sector, return_counts=True)
    top3 = set(sectors[np.argsort(counts)[::-1][:3]].tolist())
    assert top3 == {44_000, 44_002, 96_010}


def test_generate_validation(model):
    with pytest.raises(ValueError):
        model.generate(0.0)


def test_generate_reproducible(model):
    a = model.generate(100.0, rng=np.random.default_rng(7))
    b = model.generate(100.0, rng=np.random.default_rng(7))
    assert a == b


def test_bursty_model_generates_bursty_arrivals():
    # strongly bursty source: bursts of 10 back-to-back requests every 10 s
    times = np.sort(np.concatenate(
        [10.0 * burst + 1e-3 * np.arange(10) for burst in range(100)]))
    rows = [(float(t), 100, 1, 1, 1.0, 0) for t in times]
    model = fit_workload_model(TraceDataset.from_records(rows))
    assert model.interarrival_scv > 1.5
    synth = model.generate(500.0, rng=np.random.default_rng(4))
    gaps = np.diff(np.sort(synth.time))
    scv = gaps.var() / gaps.mean() ** 2
    assert scv > 1.2


# -- replay -------------------------------------------------------------------

def test_replay_reports_sane_latencies():
    report = replay_trace(reference_trace(n=300), scheduler="clook")
    assert report.requests == 300
    assert 0 < report.mean_latency < 1.0
    assert report.p95_latency >= report.mean_latency
    assert 0 < report.disk_busy_fraction <= 1.0


def test_replay_validation():
    with pytest.raises(ValueError):
        replay_trace(TraceDataset.empty())
    with pytest.raises(ValueError):
        replay_trace(reference_trace(n=10), scheduler="elevator9000")
    with pytest.raises(ValueError):
        replay_trace(reference_trace(n=10), time_scale=0)


def test_replay_against_scenario_fabric():
    from repro.config import Scenario
    trace = reference_trace(n=300)
    single = replay_trace(trace, scenario=Scenario())
    raid0 = replay_trace(trace, scenario=Scenario.from_dict(
        {"node": {"disks": [{}, {}], "volume": {"policy": "raid0"}}}))
    assert single.requests == raid0.requests == 300
    assert raid0.scheduler == "clook"      # taken from the scenario stack
    assert 0 < raid0.disk_busy_fraction <= 1.0
    # two spindles serve the same request stream: each is busier less
    assert raid0.disk_busy_fraction < single.disk_busy_fraction


def test_replay_scenario_owns_the_stack():
    from repro.config import Scenario
    with pytest.raises(ValueError):
        replay_trace(reference_trace(n=10), scheduler="fifo",
                     scenario=Scenario())


def test_time_compression_raises_queueing():
    trace = reference_trace(n=300)
    relaxed = replay_trace(trace, time_scale=1.0)
    loaded = replay_trace(trace, time_scale=0.01)
    assert loaded.mean_latency > relaxed.mean_latency
    assert loaded.max_queue_depth > relaxed.max_queue_depth


def test_scheduler_comparison_under_load():
    # seek-heavy workload: sectors uniform over the whole disk, arrivals
    # compressed so the queue stays deep
    rng = np.random.default_rng(5)
    rows = [(float(t), int(rng.integers(0, 1_000_000)), 1, 1, 1.0, 0)
            for t in np.sort(rng.uniform(0, 400.0, size=400))]
    trace = TraceDataset.from_records(rows)
    reports = compare_schedulers(trace, time_scale=0.001)
    assert set(reports) == {"fifo", "sstf", "scan", "clook"}
    assert reports["scan"].mean_latency < reports["fifo"].mean_latency
    # seek-aware disciplines beat FIFO when the queue is deep
    assert reports["clook"].mean_latency < reports["fifo"].mean_latency
    assert reports["sstf"].mean_latency < reports["fifo"].mean_latency


def test_model_json_roundtrip(model):
    restored = WorkloadModel.from_json(model.to_json())
    assert np.array_equal(restored.sizes_kb, model.sizes_kb)
    assert np.array_equal(restored.hot_sectors, model.hot_sectors)
    assert restored.arrival_rate == model.arrival_rate
    # a restored model generates the identical trace
    a = model.generate(50.0, rng=np.random.default_rng(9))
    b = restored.generate(50.0, rng=np.random.default_rng(9))
    assert a == b


def test_from_json_rejects_foreign_documents():
    with pytest.raises(ValueError):
        WorkloadModel.from_json('{"format": "something-else"}')


def test_cli_fit_model(tmp_path, capsys):
    from repro.cli import main
    out = tmp_path / "model.json"
    rc = main(["baseline", "--nodes", "1", "--duration", "300",
               "--fit-model", str(out)])
    assert rc == 0
    restored = WorkloadModel.from_json(out.read_text())
    assert restored.arrival_rate > 0
