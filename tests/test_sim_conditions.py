"""Unit tests for AllOf / AnyOf composite events."""


from repro.sim import Simulator


def test_all_of_waits_for_slowest():
    sim = Simulator()
    results = []

    def waiter(sim):
        values = yield sim.all_of([sim.timeout(1.0, "a"), sim.timeout(3.0, "b")])
        results.append((sim.now, values))

    sim.process(waiter(sim))
    sim.run()
    assert results == [(3.0, {0: "a", 1: "b"})]


def test_any_of_returns_first():
    sim = Simulator()
    results = []

    def waiter(sim):
        index, value = yield sim.any_of(
            [sim.timeout(5.0, "slow"), sim.timeout(2.0, "fast")])
        results.append((sim.now, index, value))

    sim.process(waiter(sim))
    sim.run()
    assert results == [(2.0, 1, "fast")]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    results = []

    def waiter(sim):
        values = yield sim.all_of([])
        results.append((sim.now, values))

    sim.process(waiter(sim))
    sim.run()
    assert results == [(0.0, {})]


def test_all_of_propagates_child_failure():
    sim = Simulator()
    failing = sim.event()
    caught = []

    def waiter(sim):
        try:
            yield sim.all_of([sim.timeout(10.0), failing])
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(waiter(sim))
    failing.fail(RuntimeError("child died"))
    sim.run()
    assert caught == ["child died"]


def test_all_of_with_already_processed_child():
    sim = Simulator()
    done = sim.timeout(0.0, "early")
    sim.run()
    results = []

    def waiter(sim):
        values = yield sim.all_of([done, sim.timeout(1.0, "late")])
        results.append(values)

    sim.process(waiter(sim))
    sim.run()
    assert results == [{0: "early", 1: "late"}]
