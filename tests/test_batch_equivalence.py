"""Batch-vs-scalar equivalence: the drained hot path changes nothing.

``Disk(batch=True)`` (the default) services requests by draining runs
from the scheduler and vectorizing their service terms;
``Disk(batch=False)`` forces the scalar reference server — one
scheduler round-trip and one queued completion event per request.  The
batched path is only allowed to be *faster*: for every registered
scheduler discipline, on both event-queue engines, the same submitted
stream must produce bit-identical completion ordering, per-request
latencies, and :class:`DiskStats`.

The workloads interleave bursts (same-instant submissions, so drains
claim real multi-request runs and stale-epoch requeues trigger) with
spaced arrivals (depth-1 fast paths), the two regimes the batched
server distinguishes.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.disk import Disk
from repro.disk.request import IORequest
from repro.disk.scheduler import SCHEDULERS, supports_batching
from repro.disk.service import DiskServiceModel
from repro.sim import Simulator

MODEL = DiskServiceModel()
TOTAL_SECTORS = MODEL.geometry.total_sectors

# (inter-arrival delay, sector, nsectors, is_write); zero delays create
# the same-instant bursts the drain path exists for
_requests = st.lists(
    st.tuples(
        st.one_of(st.just(0.0),
                  st.floats(min_value=1e-6, max_value=0.2,
                            allow_nan=False, allow_infinity=False)),
        st.integers(min_value=0, max_value=TOTAL_SECTORS - 64),
        st.integers(min_value=1, max_value=64),
        st.booleans(),
    ),
    min_size=1, max_size=40,
)


def _run(queue_kind, scheduler_name, workload, seed, batch,
         media_error_rate=0.0):
    """Drive one disk with ``workload``; return the observable record."""
    sim = Simulator(queue=queue_kind)
    disk = Disk(sim,
                service=MODEL,
                scheduler=SCHEDULERS.create(scheduler_name),
                rng=np.random.default_rng(seed),
                media_error_rate=media_error_rate,
                batch=batch)
    completions = []

    def submitter():
        for index, (delay, sector, nsectors, is_write) in enumerate(workload):
            if delay:
                yield sim.timeout(delay)
            request = IORequest(sector=sector, nsectors=nsectors,
                                is_write=is_write, origin=index)
            disk.submit(request).callbacks.append(
                lambda _ev, r=request: completions.append(
                    (r.origin, sim.now, r.complete_time - r.submit_time,
                     r.failed)))

    sim.process(submitter(), name="submitter")
    sim.run()
    stats = disk.stats
    return completions, (stats.reads, stats.writes, stats.sectors_read,
                         stats.sectors_written, stats.busy_time,
                         stats.total_latency, stats.max_queue_depth,
                         stats.media_errors)


@pytest.mark.parametrize("queue_kind", ["calendar", "heap"])
@pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS.names()))
@settings(max_examples=25, deadline=None)
@given(workload=_requests, seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_batched_server_matches_scalar(queue_kind, scheduler_name,
                                       workload, seed):
    scalar = _run(queue_kind, scheduler_name, workload, seed, batch=False)
    batched = _run(queue_kind, scheduler_name, workload, seed, batch=True)
    assert batched == scalar


@pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS.names()))
@settings(max_examples=10, deadline=None)
@given(workload=_requests, seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_batched_server_matches_scalar_with_media_errors(scheduler_name,
                                                         workload, seed):
    # failed requests draw one extra uniform each; the lazy batched
    # draws must keep the stream aligned with the scalar server's
    scalar = _run("calendar", scheduler_name, workload, seed,
                  batch=False, media_error_rate=0.2)
    batched = _run("calendar", scheduler_name, workload, seed,
                   batch=True, media_error_rate=0.2)
    assert batched == scalar


def test_every_registered_scheduler_supports_batching():
    # the shipped disciplines all implement drain/requeue; third-party
    # registrations without it fall back to the scalar server instead
    for name in SCHEDULERS.names():
        assert supports_batching(SCHEDULERS.create(name)), name
