"""Unit and property tests for disk geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.disk import DiskGeometry, SECTOR_BYTES


def test_default_geometry_is_about_500mb():
    geo = DiskGeometry()
    assert 480 * 1024 * 1024 <= geo.capacity_bytes <= 520 * 1024 * 1024


def test_from_capacity_reaches_requested_size():
    geo = DiskGeometry.from_capacity_mb(500)
    assert geo.capacity_bytes >= 500 * 1024 * 1024
    # ... but not by more than one cylinder
    assert geo.capacity_bytes - 500 * 1024 * 1024 < \
        geo.sectors_per_cylinder * SECTOR_BYTES


def test_from_capacity_rejects_nonpositive():
    with pytest.raises(ValueError):
        DiskGeometry.from_capacity_mb(0)


def test_chs_of_first_and_last_sector():
    geo = DiskGeometry(cylinders=10, heads=2, sectors_per_track=4)
    assert geo.chs(0) == (0, 0, 0)
    assert geo.chs(geo.total_sectors - 1) == (9, 1, 3)


def test_cylinder_of_boundaries():
    geo = DiskGeometry(cylinders=10, heads=2, sectors_per_track=4)
    assert geo.cylinder_of(7) == 0
    assert geo.cylinder_of(8) == 1


def test_out_of_range_sector_rejected():
    geo = DiskGeometry(cylinders=2, heads=2, sectors_per_track=2)
    with pytest.raises(ValueError):
        geo.chs(geo.total_sectors)
    with pytest.raises(ValueError):
        geo.cylinder_of(-1)


def test_lba_range_checks():
    geo = DiskGeometry(cylinders=2, heads=2, sectors_per_track=2)
    with pytest.raises(ValueError):
        geo.lba(2, 0, 0)
    with pytest.raises(ValueError):
        geo.lba(0, 2, 0)
    with pytest.raises(ValueError):
        geo.lba(0, 0, 2)


def test_nonpositive_dimensions_rejected():
    with pytest.raises(ValueError):
        DiskGeometry(cylinders=0)


@given(st.integers(min_value=1, max_value=200),
       st.integers(min_value=1, max_value=16),
       st.integers(min_value=1, max_value=63),
       st.data())
def test_chs_lba_roundtrip(cyls, heads, spt, data):
    geo = DiskGeometry(cylinders=cyls, heads=heads, sectors_per_track=spt)
    sector = data.draw(st.integers(min_value=0,
                                   max_value=geo.total_sectors - 1))
    c, h, s = geo.chs(sector)
    assert geo.lba(c, h, s) == sector
    assert 0 <= c < cyls and 0 <= h < heads and 0 <= s < spt


# -- zoned-bit recording ------------------------------------------------------

def test_zbr_outer_tracks_hold_more():
    from repro.disk import ZBRGeometry
    geo = ZBRGeometry(cylinders=1000, heads=16, sectors_per_track=63,
                      zbr_ratio=1.6, zones=8)
    outer = geo.sectors_per_track_at(0)
    inner = geo.sectors_per_track_at(999)
    assert outer > inner
    assert outer / inner == pytest.approx(1.6, rel=0.1)


def test_zbr_mean_capacity_preserved():
    from repro.disk import ZBRGeometry
    import numpy as np
    geo = ZBRGeometry(cylinders=1000, heads=16, sectors_per_track=63)
    spts = [geo.sectors_per_track_at(c) for c in range(0, 1000, 10)]
    assert np.mean(spts) == pytest.approx(63, rel=0.05)
    # LBA mapping unchanged from the flat geometry
    assert geo.total_sectors == 1000 * 16 * 63


def test_zbr_validation():
    from repro.disk import ZBRGeometry
    with pytest.raises(ValueError):
        ZBRGeometry(zbr_ratio=0.5)
    with pytest.raises(ValueError):
        ZBRGeometry(zones=0)
    geo = ZBRGeometry()
    with pytest.raises(ValueError):
        geo.sectors_per_track_at(-1)


def test_plain_geometry_is_uniform():
    geo = DiskGeometry(cylinders=100, heads=2, sectors_per_track=10)
    assert geo.sectors_per_track_at(0) == geo.sectors_per_track_at(99) == 10


def test_zbr_transfer_faster_on_outer_cylinders():
    from repro.disk import DiskServiceModel, ZBRGeometry
    model = DiskServiceModel(geometry=ZBRGeometry())
    t_outer = model.transfer_time_at(32, 0)
    t_inner = model.transfer_time_at(32, model.geometry.cylinders - 1)
    assert t_outer < t_inner
