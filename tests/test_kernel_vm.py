"""Unit tests for the virtual memory / demand paging substrate."""

import numpy as np
import pytest

from repro.disk import Disk
from repro.driver import InstrumentedIDEDriver, ProcTraceTransport
from repro.kernel import VirtualMemory
from repro.kernel.params import DiskLayout
from repro.kernel.vm import OutOfSwap
from repro.sim import Simulator
from tests.conftest import drive


@pytest.fixture
def vm_rig():
    sim = Simulator()
    disk = Disk(sim, rng=np.random.default_rng(0))
    transport = ProcTraceTransport(sim)
    driver = InstrumentedIDEDriver(sim, disk, transport=transport)
    vm = VirtualMemory(driver, frames_total=4, page_kb=4)
    return sim, vm, transport


def traces(transport):
    transport.drain_now()
    return transport.user_buffer.to_array()


def test_zero_fill_costs_no_io(vm_rig):
    sim, vm, transport = vm_rig
    aspace = vm.create_space("app")
    drive(sim, vm.access(aspace, 0))
    assert vm.stats.zero_fills == 1
    assert len(traces(transport)) == 0
    assert aspace.rss == 1


def test_resident_hit_costs_nothing(vm_rig):
    sim, vm, transport = vm_rig
    aspace = vm.create_space("app")
    drive(sim, vm.access(aspace, 0))
    drive(sim, vm.access(aspace, 0))
    assert vm.stats.hits == 1
    assert vm.stats.faults == 1


def test_demand_load_reads_4kb_from_file_location(vm_rig):
    sim, vm, transport = vm_rig
    aspace = vm.create_space("app")
    aspace.file_pages[0] = (32_000, 8)  # file-backed page at sector 32000
    drive(sim, vm.access(aspace, 0))
    arr = traces(transport)
    assert len(arr) == 1
    assert arr["write"][0] == 0
    assert arr["sector"][0] == 32_000
    assert arr["size_kb"][0] == 4.0
    assert vm.stats.demand_loads == 1


def test_dirty_eviction_writes_to_swap_and_swapin_reads_back(vm_rig):
    sim, vm, transport = vm_rig
    aspace = vm.create_space("app")
    # Fill all 4 frames with dirty pages, then touch a 5th.
    for page in range(4):
        drive(sim, vm.access(aspace, page, write=True))
    drive(sim, vm.access(aspace, 4, write=True))
    arr = traces(transport)
    writes = arr[arr["write"] == 1]
    assert len(writes) == 1
    layout = DiskLayout()
    assert writes["sector"][0] >= layout.swap_start
    assert writes["size_kb"][0] == 4.0
    assert 0 in aspace.swapped
    # Touch page 0 again: swap-in read from the same slot.
    drive(sim, vm.access(aspace, 0))
    arr = traces(transport)
    reads = arr[arr["write"] == 0]
    assert len(reads) == 1
    assert reads["sector"][0] == writes["sector"][0]
    assert vm.stats.swap_ins == 1


def test_clean_eviction_is_silent(vm_rig):
    sim, vm, transport = vm_rig
    aspace = vm.create_space("app")
    for page in range(5):  # clean zero-fill pages, one eviction
        drive(sim, vm.access(aspace, page, write=False))
    assert vm.stats.evictions == 1
    assert vm.stats.swap_outs == 0
    assert len(traces(transport)) == 0


def test_global_lru_evicts_across_spaces(vm_rig):
    sim, vm, transport = vm_rig
    a = vm.create_space("a")
    b = vm.create_space("b")
    for page in range(4):
        drive(sim, vm.access(a, page, write=True))
    drive(sim, vm.access(b, 0, write=True))  # pressure from b evicts a's LRU
    assert 0 in a.swapped
    assert b.rss == 1


def test_touch_range_demand_loads_sequentially(vm_rig):
    sim, vm, transport = vm_rig
    aspace = vm.create_space("app")
    for i in range(3):
        aspace.file_pages[i] = (40_000 + i * 8, 8)
    drive(sim, vm.touch_range(aspace, 0, 3))
    arr = traces(transport)
    assert len(arr) == 3
    assert list(arr["sector"]) == [40_000, 40_008, 40_016]


def test_destroy_space_releases_frames(vm_rig):
    sim, vm, transport = vm_rig
    aspace = vm.create_space("app")
    for page in range(4):
        drive(sim, vm.access(aspace, page))
    assert vm.frames_free == 0
    vm.destroy_space(aspace)
    assert vm.frames_free == 4


def test_out_of_swap_raises():
    sim = Simulator()
    disk = Disk(sim, rng=np.random.default_rng(0))
    driver = InstrumentedIDEDriver(sim, disk)
    layout = DiskLayout(swap_sectors=8)  # exactly one 4 KB slot
    vm = VirtualMemory(driver, frames_total=1, page_kb=4, layout=layout)
    aspace = vm.create_space("app")
    drive(sim, vm.access(aspace, 0, write=True))
    drive(sim, vm.access(aspace, 1, write=True))  # uses the only slot
    with pytest.raises(OutOfSwap):
        drive(sim, vm.access(aspace, 2, write=True))


def test_rss_accounting(vm_rig):
    sim, vm, transport = vm_rig
    aspace = vm.create_space("app")
    for page in range(6):  # 4 frames; rss capped
        drive(sim, vm.access(aspace, page))
    assert aspace.rss == 4
    assert vm.frames_used == 4
