"""Tests for the single-file HTML report."""

import numpy as np
import pytest

from repro.core import TraceDataset
from repro.core.experiments import ExperimentResult
from repro.core.html_report import build_html_report


def make_results():
    rng = np.random.default_rng(0)

    def result(name, n=100):
        rows = [(float(i), int(rng.integers(0, 10**6)),
                 int(rng.random() < 0.7), 1,
                 float(rng.choice([1.0, 4.0, 16.0])), 0)
                for i in range(n)]
        return ExperimentResult(name=name,
                                trace=TraceDataset.from_records(rows),
                                duration=float(n), nnodes=1)

    return {name: result(name)
            for name in ("baseline", "ppm", "wavelet", "nbody", "combined")}


@pytest.fixture(scope="module")
def html():
    return build_html_report(make_results())


def test_valid_html_skeleton(html):
    assert html.startswith("<!DOCTYPE html>")
    assert html.rstrip().endswith("</html>")
    assert "<title>" in html


def test_contains_table_and_scorecard(html):
    assert "Table 1" in html
    assert "scorecard" in html.lower()
    for claim_id in ("B1", "W2", "L1"):
        assert f"<td>{claim_id}</td>" in html


def test_all_eight_figures_inline(html):
    assert html.count("<svg") == 8
    for n in range(1, 9):
        assert f"Figure {n}" in html


def test_per_experiment_sections(html):
    for name in ("baseline", "ppm", "wavelet", "nbody", "combined"):
        assert f"=== {name}" in html


def test_partial_results_render():
    results = make_results()
    html = build_html_report({"baseline": results["baseline"]})
    assert html.count("<svg") == 1          # only Figure 1 available
    assert "SKIP" in html                   # other claims skipped


def test_cli_html_flag(tmp_path):
    from repro.cli import main
    out = tmp_path / "report.html"
    rc = main(["baseline", "--nodes", "1", "--duration", "200",
               "--html", str(out)])
    assert rc == 0
    assert out.read_text().startswith("<!DOCTYPE html>")
