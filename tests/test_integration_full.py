"""Deep integration tests: whole-system consistency and scale invariance."""

import numpy as np
import pytest

from repro.core import ExperimentRunner
from repro.core.claims import evaluate_claims
from repro.core.sizes import class_fractions, RequestClass


def test_filesystems_consistent_after_combined_run():
    runner = ExperimentRunner(nnodes=2, seed=3)
    runner.run("combined")
    for node in runner.last_cluster.nodes:
        assert node.kernel.fs.fsck() == []


def test_filesystems_consistent_after_baseline():
    runner = ExperimentRunner(nnodes=1, seed=3, baseline_duration=400.0)
    runner.run("baseline")
    for node in runner.last_cluster.nodes:
        assert node.kernel.fs.fsck() == []


def test_no_swap_leak_after_apps_exit():
    runner = ExperimentRunner(nnodes=1, seed=2)
    runner.run("wavelet")
    vm = runner.last_cluster.nodes[0].kernel.vm
    # all address spaces destroyed -> no frames held
    assert vm.frames_used == 0


def test_per_node_characteristics_invariant_in_cluster_size():
    """The paper's per-disk observations should not depend on node count."""
    def fractions(nnodes):
        runner = ExperimentRunner(nnodes=nnodes, seed=1)
        result = runner.run("nbody")
        return (result.metrics.read_fraction,
                class_fractions(result.trace)[RequestClass.BLOCK],
                result.metrics.requests_per_node)

    r1, b1, n1 = fractions(1)
    r3, b3, n3 = fractions(3)
    assert r3 == pytest.approx(r1, abs=0.06)
    assert b3 == pytest.approx(b1, abs=0.12)
    assert n3 == pytest.approx(n1, rel=0.35)


def test_different_seeds_same_shape():
    """Claims are robust to the random seed, not a lucky draw."""
    for seed in (11, 29):
        runner = ExperimentRunner(nnodes=1, seed=seed,
                                  baseline_duration=800.0)
        results = {"baseline": runner.run("baseline"),
                   "wavelet": runner.run("wavelet")}
        outcomes = [o for o in evaluate_claims(results)
                    if o.passed is not None]
        failing = [o.claim.id for o in outcomes if not o.passed]
        assert not failing, f"seed {seed}: {failing}"


def test_trace_pending_counts_sane_under_load():
    runner = ExperimentRunner(nnodes=1, seed=4)
    result = runner.run("wavelet")
    pending = result.trace.pending
    assert pending.min() >= 1                 # includes the logged request
    assert pending.max() < 200                # queue never explodes
    assert float(np.mean(pending)) < 20


def test_reproducible_across_hash_seeds():
    """Results must not depend on Python's per-process hash randomization.

    (Regression test: app RNG seeding once used hash(name), which varies
    with PYTHONHASHSEED and made benchmark shapes flaky across runs.)
    """
    import os
    import subprocess
    import sys

    code = ("from repro.core import ExperimentRunner;"
            "m = ExperimentRunner(nnodes=1, seed=1)"
            ".run('nbody').metrics;"
            "print(m.total_requests, m.read_pct)")
    outputs = set()
    for hash_seed in ("1", "7777"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        result = subprocess.run([sys.executable, "-c", code], env=env,
                                capture_output=True, text=True, check=True)
        outputs.add(result.stdout.strip())
    assert len(outputs) == 1, outputs
