"""Unit and property tests for request-queue disciplines."""

from hypothesis import given, strategies as st

from repro.disk import CLookScheduler, FIFOScheduler, IORequest, SSTFScheduler


def _req(sector):
    return IORequest(sector=sector, nsectors=2, is_write=False)


def _drain(sched, head=0):
    order = []
    while len(sched):
        r = sched.next(head)
        order.append(r.sector)
        head = r.sector
    return order


def test_fifo_preserves_arrival_order():
    s = FIFOScheduler()
    for sector in (500, 10, 300):
        s.add(_req(sector))
    assert _drain(s) == [500, 10, 300]


def test_sstf_picks_nearest():
    s = SSTFScheduler()
    for sector in (1000, 90, 110):
        s.add(_req(sector))
    # head at 100: nearest is 90 (d=10), then 110 (d=20), then 1000
    order = []
    head = 100
    while len(s):
        r = s.next(head)
        order.append(r.sector)
        head = r.sector
    assert order == [90, 110, 1000]


def test_clook_sweeps_upward_then_wraps():
    s = CLookScheduler()
    for sector in (50, 500, 200, 900):
        s.add(_req(sector))
    assert _drain(s, head=100) == [200, 500, 900, 50]


def test_clook_equal_to_head_served_in_sweep():
    s = CLookScheduler()
    s.add(_req(100))
    s.add(_req(300))
    assert _drain(s, head=100) == [100, 300]


def test_empty_scheduler_returns_none():
    for s in (FIFOScheduler(), SSTFScheduler(), CLookScheduler()):
        assert s.next(0) is None


def test_pending_lists_queue_without_removal():
    s = CLookScheduler()
    s.add(_req(5))
    s.add(_req(7))
    assert sorted(r.sector for r in s.pending()) == [5, 7]
    assert len(s) == 2


@given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1,
                max_size=30),
       st.integers(min_value=0, max_value=10**6))
def test_all_disciplines_serve_every_request(sectors, head):
    for make in (FIFOScheduler, SSTFScheduler, CLookScheduler):
        s = make()
        for sec in sectors:
            s.add(_req(sec))
        assert sorted(_drain(s, head)) == sorted(sectors)


@given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=2,
                max_size=20))
def test_clook_single_sweep_is_sorted_above_head(sectors):
    s = CLookScheduler()
    for sec in sectors:
        s.add(_req(sec))
    served = _drain(s, head=0)
    # Head starts at 0, so one upward sweep serves everything sorted.
    assert served == sorted(sectors)
