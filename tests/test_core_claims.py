"""Tests for the paper-claim scorecard."""

import pytest

from repro.core import ExperimentRunner
from repro.core.claims import CLAIMS, evaluate_claims, render_scorecard


@pytest.fixture(scope="module")
def results():
    runner = ExperimentRunner(nnodes=2, seed=1, baseline_duration=800.0)
    return runner.run_all()


def test_claim_ids_unique():
    ids = [c.id for c in CLAIMS]
    assert len(ids) == len(set(ids))
    assert len(CLAIMS) >= 15


def test_all_claims_evaluated_against_full_results(results):
    outcomes = evaluate_claims(results)
    assert len(outcomes) == len(CLAIMS)
    assert all(o.passed is not None for o in outcomes)


def test_every_claim_passes_at_default_configuration(results):
    outcomes = evaluate_claims(results)
    failing = [(o.claim.id, o.detail) for o in outcomes if not o.passed]
    assert not failing, f"claims failing: {failing}"


def test_missing_experiments_are_skipped(results):
    partial = {"baseline": results["baseline"]}
    outcomes = evaluate_claims(partial)
    statuses = {o.claim.id: o.status for o in outcomes}
    assert statuses["B1"] == "PASS"
    assert statuses["W1"] == "SKIP"
    assert statuses["C1"] == "SKIP"


def test_render_scorecard(results):
    text = render_scorecard(evaluate_claims(results))
    assert "scorecard" in text
    assert "B1" in text and "L2" in text
    assert "claims hold" in text


def test_render_with_skips(results):
    text = render_scorecard(evaluate_claims(
        {"baseline": results["baseline"]}))
    assert "skipped" in text


def test_cli_claims_flag(capsys):
    from repro.cli import main
    rc = main(["baseline", "--nodes", "1", "--duration", "400", "--claims"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "scorecard" in out
    assert "SKIP" in out     # app claims skipped when only baseline ran
