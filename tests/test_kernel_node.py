"""Integration tests for the NodeKernel facade."""

import numpy as np
import pytest

from repro.kernel import NodeKernel, NodeParams
from repro.sim import RandomStreams
from tests.conftest import drive


@pytest.fixture
def node(sim):
    return NodeKernel(sim, streams=RandomStreams(seed=1), node_id=0)


def test_node_wires_all_subsystems(node):
    assert node.disk is not None
    assert node.fs.cache.driver is node.driver
    assert node.vm.driver is node.driver
    assert node.params.ram_mb == 16


def test_user_frames_reflect_beowulf_memory():
    p = NodeParams()
    # 16 MB - 5 MB kernel - 2 MB buffer cache = 9 MB user = 2304 frames
    assert p.user_frames == 2304


def test_baseline_run_produces_write_dominated_trace(sim, node):
    sim.run(until=600.0)
    arr = node.trace_array()
    assert len(arr) > 10
    assert (arr["write"] == 1).mean() > 0.9
    # 1 KB is the dominant request size (block I/O)
    sizes, counts = np.unique(arr["size_kb"], return_counts=True)
    assert sizes[np.argmax(counts)] <= 4.0


def test_baseline_rate_is_order_one_per_second(sim, node):
    sim.run(until=1000.0)
    arr = node.trace_array()
    rate = len(arr) / 1000.0
    assert 0.2 < rate < 3.0  # paper: 0.9 req/s


def test_baseline_touches_low_and_high_sectors(sim, node):
    sim.run(until=600.0)
    arr = node.trace_array()
    layout = node.params.disk_layout
    assert (arr["sector"] < layout.swap_start).any()
    assert (arr["sector"] >= layout.highlog_start).any()


def test_app_file_io_through_node(sim, node):
    def app():
        handle = yield from node.create("/home/data.out")
        yield from handle.write(8 * 1024)
        handle.seek(0)
        n = yield from handle.read(8 * 1024)
        return n

    def main():
        yield from node.fs.makedirs("/home")
        proc = node.spawn(app(), name="writer")
        value = yield proc
        return value

    assert drive(sim, main(), until=50.0) == 8 * 1024
    assert node.fs.lookup("/home/data.out").size_bytes == 8 * 1024


def test_spawn_tracks_multiprogramming_level(sim, node):
    assert node.effective_readahead_kb() == 16

    def app(duration):
        yield sim.timeout(duration)

    node.spawn(app(10.0))
    node.spawn(app(10.0))
    assert node.apps_running == 2
    assert node.effective_readahead_kb() == 32  # scaled under load
    sim.run(until=20.0)
    assert node.apps_running == 0
    assert node.effective_readahead_kb() == 16


def test_set_trace_level_off_silences_trace(sim, node):
    from repro.driver import TraceLevel
    node.set_trace_level(TraceLevel.OFF)
    sim.run(until=120.0)
    assert len(node.trace_array()) == 0


def test_trace_timestamps_relative_to_reset(sim, node):
    def scenario():
        yield sim.timeout(50.0)
        node.driver.reset_clock()
        node.transport.drain_now()
        node.transport.user_buffer.clear()

    sim.process(scenario())
    sim.run(until=300.0)
    arr = node.trace_array()
    assert len(arr) > 0
    assert arr["time"].min() >= 0.0
    assert arr["time"].max() <= 250.0


def test_two_nodes_are_independent(sim):
    n0 = NodeKernel(sim, streams=RandomStreams(seed=1), node_id=0)
    n1 = NodeKernel(sim, streams=RandomStreams(seed=2), node_id=1)
    sim.run(until=300.0)
    a0 = n0.trace_array()
    a1 = n1.trace_array()
    assert set(a0["node"]) == {0}
    assert set(a1["node"]) == {1}
    # different seeds -> different arrival patterns
    assert len(a0) != len(a1) or not np.array_equal(a0["time"], a1["time"])


def test_failing_app_does_not_corrupt_multiprogramming_level(sim, node):
    """An application crash still decrements apps_running (finally path)."""
    def bad_app():
        yield sim.timeout(1.0)
        raise RuntimeError("app crashed")

    sim._fail_fast = False
    node.spawn(bad_app(), name="crasher")
    sim.run(until=5.0)
    assert node.apps_running == 0
    assert node.effective_readahead_kb() == 16


def test_failing_app_releases_vm_space(sim, node):
    from repro.apps import PPMApplication, PPMParams

    class ExplodingPPM(PPMApplication):
        def run(self):
            self._setup_address_space()
            self.stats.started_at = self.kernel.sim.now
            try:
                yield self.kernel.sim.timeout(1.0)
                raise RuntimeError("mid-run failure")
            finally:
                self.stats.finished_at = self.kernel.sim.now
                self._teardown_address_space()

    sim._fail_fast = False
    app = ExplodingPPM(node, params=PPMParams(steps=1))

    def setup():
        yield from app.install()

    sim.process(setup())
    sim.run(until=0.5)
    node.spawn(app.run(), name="exploder")
    sim.run(until=10.0)
    assert node.vm.frames_used == 0
    assert app.aspace is None
