"""The paper's methodological note, as a test.

"(Note: I/O instrumentation did not measurably change the execution time
of any of the applications.)" — section 4.3.  We verify the reproduction
has the same property: running an application with tracing ON vs OFF
leaves its duration essentially unchanged (the trace ring is memory-
buffered; only the small instrumentation-log writes are added, and those
are asynchronous).
"""

import pytest

from repro.apps import PPMApplication, WaveletApplication
from repro.cluster import BeowulfCluster
from repro.driver import TraceLevel
from repro.sim import Simulator


def run_app(appcls, trace_on, seed=5, **app_kw):
    sim = Simulator()
    cluster = BeowulfCluster(sim, nnodes=1, seed=seed)
    node = cluster.nodes[0]
    if not trace_on:
        node.kernel.set_trace_level(TraceLevel.OFF)
    app = appcls(node, **app_kw)

    def setup():
        yield from app.install()

    sim.process(setup())
    sim.run(until=1.0)
    cluster.reset_trace_clocks()
    node.kernel.spawn(app.run(), name=app.name)
    sim.run(until=3000.0)
    return app.stats.duration, len(node.kernel.trace_array())


@pytest.mark.parametrize("appcls", [PPMApplication, WaveletApplication])
def test_tracing_does_not_measurably_change_execution_time(appcls):
    on_duration, on_records = run_app(appcls, trace_on=True)
    off_duration, off_records = run_app(appcls, trace_on=False)
    assert on_records > 0
    assert off_records == 0
    # within 2% — "did not measurably change the execution time"
    assert on_duration == pytest.approx(off_duration, rel=0.02)
