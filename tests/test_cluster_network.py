"""Unit tests for the Ethernet model."""

import numpy as np
import pytest

from repro.cluster.network import MTU, EthernetNetwork
from repro.sim import Simulator
from tests.conftest import drive


def make_net(sim, **kw):
    return EthernetNetwork(sim, rng=np.random.default_rng(0), **kw)


def test_small_message_takes_latency_plus_frame(sim):
    net = make_net(sim)
    duration = drive(sim, net.transmit(100))
    expected = net.latency + net.frame_time(100)
    assert duration == pytest.approx(expected)


def test_large_message_fragments(sim):
    net = make_net(sim)
    drive(sim, net.transmit(4 * MTU))
    assert net.stats.frames == 4
    assert net.stats.messages == 1
    assert net.stats.bytes_carried == 4 * MTU


def test_bandwidth_bounds_throughput(sim):
    net = make_net(sim, channels=1)
    nbytes = 10 * MTU
    duration = drive(sim, net.transmit(nbytes))
    wire_rate = nbytes * 8 / duration
    assert wire_rate < net.bandwidth_bps  # overheads keep it below line rate
    assert wire_rate > 0.5 * net.bandwidth_bps


def test_two_channels_carry_concurrent_messages_faster(sim):
    def run(channels):
        s = Simulator()
        net = make_net(s, channels=channels)
        done = []

        def sender():
            yield from net.transmit(20 * MTU)
            done.append(s.now)

        s.process(sender())
        s.process(sender())
        s.run()
        return max(done)

    assert run(2) < run(1) * 0.75


def test_contention_serializes_on_one_channel(sim):
    net = make_net(sim, channels=1)
    finished = []

    def sender():
        yield from net.transmit(5 * MTU)
        finished.append(sim.now)

    sim.process(sender())
    sim.process(sender())
    sim.run()
    solo = net.transfer_time_estimate(5 * MTU)
    assert max(finished) > 1.5 * solo


def test_transfer_time_estimate_close_to_actual_uncontended(sim):
    net = make_net(sim)
    actual = drive(sim, net.transmit(7000))
    assert actual == pytest.approx(net.transfer_time_estimate(7000), rel=0.05)


def test_invalid_parameters(sim):
    with pytest.raises(ValueError):
        EthernetNetwork(sim, bandwidth_bps=0)
    with pytest.raises(ValueError):
        EthernetNetwork(sim, channels=0)
    net = make_net(sim)
    with pytest.raises(ValueError):
        drive(sim, net.transmit(0))
