"""The store subsystem's headline guarantees, at the 1M-record scale.

One million records — the order of a full combined experiment at paper
scale — must stream to disk with bounded writer memory, round-trip
bit-exact, answer a 10% time-window query by decompressing only the
matching chunks, and land >= 5x smaller than the equivalent CSV.
"""

import numpy as np
import pytest

from repro.core.trace import TraceDataset
from repro.driver import TRACE_DTYPE
from repro.store import TraceReader, TraceWriter

N = 1_000_000
CHUNK = 65_536


@pytest.fixture(scope="module")
def million(tmp_path_factory):
    """A realistic 1M-record trace (mixed sequential/random, few sizes)
    streamed into a store file in bounded slices."""
    rng = np.random.default_rng(42)
    arr = np.empty(N, dtype=TRACE_DTYPE)
    arr["time"] = np.sort(rng.exponential(7e-4, N).cumsum())
    base = rng.integers(0, 900_000, N // 100)
    arr["sector"] = (np.repeat(base, 100)
                     + np.tile(np.arange(100) * 8, N // 100))
    arr["write"] = rng.random(N) < 0.8
    arr["pending"] = rng.integers(0, 12, N)
    arr["size_kb"] = rng.choice([0.5, 1.0, 4.0, 32.0],
                                N, p=[0.2, 0.3, 0.3, 0.2])
    arr["node"] = rng.integers(0, 16, N)
    path = tmp_path_factory.mktemp("acceptance") / "combined.rpt"
    max_pending = 0
    with TraceWriter(path, chunk_records=CHUNK) as writer:
        for start in range(0, N, 100_000):
            writer.append_array(arr[start:start + 100_000])
            max_pending = max(max_pending, writer.pending_records)
    return arr, path, max_pending


def test_streaming_write_memory_is_bounded(million):
    arr, path, max_pending = million
    # pending buffer never exceeds one chunk; with the chunk being
    # compressed that is <= 2 chunks resident at any instant
    assert max_pending < CHUNK


def test_million_records_roundtrip_bit_exact(million):
    arr, path, _ = million
    with TraceReader(path) as reader:
        assert len(reader) == N
        back = reader.read()
    assert np.array_equal(back, arr)
    dataset = TraceDataset(back)
    assert len(dataset) == N


def test_time_window_decompresses_only_matching_chunks(million):
    arr, path, _ = million
    t = arr["time"]
    t0, t1 = float(t[int(N * 0.45)]), float(t[int(N * 0.55)])
    with TraceReader(path) as reader:
        got = reader.read(t0=t0, t1=t1)
        nchunks = reader.chunk_count
        touched = reader.chunks_read
    assert np.array_equal(got, arr[(t >= t0) & (t < t1)])
    # 10% of the records live in ~10% of the time-sorted chunks; allow
    # the two boundary chunks
    assert touched <= nchunks // 10 + 2


def test_compressed_file_is_5x_smaller_than_csv(million, tmp_path):
    arr, path, _ = million
    csv_path = tmp_path / "combined.csv"
    # writing 1M CSV rows through the csv module is slow; a 100k slice
    # scaled up measures the same bytes-per-record
    slice_n = 100_000
    TraceDataset(arr[:slice_n]).save(csv_path)
    csv_bytes = csv_path.stat().st_size * (N / slice_n)
    store_bytes = path.stat().st_size
    assert store_bytes * 5 <= csv_bytes, \
        f"store {store_bytes:,} B vs csv ~{csv_bytes:,.0f} B"
