"""Unit tests for logging and housekeeping daemons."""

import numpy as np
import pytest

from repro.kernel import BufferCache, FileSystem, SysLogger, UpdateDaemon
from repro.kernel.klog import HousekeepingLoad


@pytest.fixture
def fs(sim, traced_driver):
    cache = BufferCache(sim, traced_driver, capacity_blocks=256,
                        sectors_per_block=2)
    return FileSystem(cache)


def traces(fs):
    fs.cache.driver.transport.drain_now()
    return fs.cache.driver.transport.user_buffer.to_array()


def test_syslogger_creates_file_and_flushes(sim, fs):
    logger = SysLogger(sim, fs, "/var/log/messages", flush_interval=2.0)
    logger.log(500)
    sim.run(until=3.0)
    assert fs.exists("/var/log/messages")
    assert fs.lookup("/var/log/messages").size_bytes == 500
    logger.stop()


def test_syslogger_batches_between_flushes(sim, fs):
    logger = SysLogger(sim, fs, "/var/log/m", flush_interval=5.0)
    for _ in range(10):
        logger.log(100)
    sim.run(until=6.0)
    inode = fs.lookup("/var/log/m")
    assert inode.size_bytes == 1000
    assert inode.nblocks == 1  # one 1 KB block covers all ten messages
    logger.stop()


def test_syslogger_zone_controls_placement(sim, fs):
    low = SysLogger(sim, fs, "/var/log/messages", zone="log",
                    flush_interval=1.0)
    high = SysLogger(sim, fs, "/var/log/iotrace", zone="highlog",
                     flush_interval=1.0)
    low.log(100)
    high.log(100)
    sim.run(until=2.0)
    low_block = fs.lookup("/var/log/messages").blocks[0]
    high_block = fs.lookup("/var/log/iotrace").blocks[0]
    assert low_block < fs.layout.swap_start // 2
    assert high_block >= fs.layout.highlog_start // 2
    low.stop()
    high.stop()


def test_syslogger_rejects_empty_payload(sim, fs):
    logger = SysLogger(sim, fs, "/var/log/m")
    with pytest.raises(ValueError):
        logger.log(0)
    logger.stop()


def test_update_daemon_syncs_metadata_periodically(sim, fs):
    update = UpdateDaemon(sim, fs, interval=10.0, buffer_age=5.0)
    sim.run(until=35.0)
    update.stop()
    assert update.syncs == 3
    arr = traces(fs)
    writes = arr[arr["write"] == 1]
    # the superblock write lands at the metadata zone start
    sb_sector = fs.superblock_block * 2
    assert (writes["sector"] == sb_sector).any()


def test_housekeeping_generates_write_dominated_load(sim, fs):
    logger = SysLogger(sim, fs, "/var/log/messages", flush_interval=5.0)
    update = UpdateDaemon(sim, fs, interval=30.0, buffer_age=5.0)
    hk = HousekeepingLoad(sim, fs, logger, rng=np.random.default_rng(0),
                          message_rate=2.0)
    sim.run(until=300.0)
    for daemon in (logger, update, hk):
        daemon.stop()
    arr = traces(fs)
    assert len(arr) > 0
    write_frac = (arr["write"] == 1).mean()
    assert write_frac > 0.9          # paper baseline: ~100% writes
    assert hk.messages > 300
    assert hk.lookups > 10


def test_housekeeping_lookups_mostly_hit_cache(sim, fs):
    logger = SysLogger(sim, fs, "/var/log/messages")
    hk = HousekeepingLoad(sim, fs, logger, rng=np.random.default_rng(0),
                          message_rate=1.0, lookup_interval=2.0)
    sim.run(until=100.0)
    logger.stop()
    hk.stop()
    arr = traces(fs)
    reads = arr[arr["write"] == 0]
    # first lookup misses; subsequent ones are cache hits
    assert len(reads) <= 4


def test_housekeeping_rejects_bad_rate(sim, fs):
    logger = SysLogger(sim, fs, "/var/log/m")
    with pytest.raises(ValueError):
        HousekeepingLoad(sim, fs, logger, rng=np.random.default_rng(0),
                         message_rate=0.0)
    logger.stop()
