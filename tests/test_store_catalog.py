"""Run catalog layout, experiment sink wiring, and streamed replay."""

import json

import numpy as np
import pytest

from repro.core import ExperimentRunner
from repro.core.trace import TraceDataset
from repro.store import RunCatalog, TraceReader
from repro.synth.replay import replay_trace


@pytest.fixture(scope="module")
def sunk_run(tmp_path_factory):
    """One small baseline experiment streamed into a catalog."""
    root = tmp_path_factory.mktemp("catalog") / "runs"
    runner = ExperimentRunner(nnodes=2, seed=3, sink=root)
    result = runner.run("baseline", duration=120.0)
    return root, runner, result


def test_sink_produces_manifest_and_per_node_files(sunk_run):
    root, runner, result = sunk_run
    catalog = RunCatalog(root)
    assert catalog.runs() == ["baseline"]
    manifest = catalog.manifest("baseline")
    assert manifest["format"] == "repro-run-v2"
    assert manifest["nnodes"] == 2
    assert manifest["seed"] == 3
    assert manifest["config"]["nnodes"] == 2
    # v2 manifests carry the fully-resolved scenario
    assert manifest["scenario"]["cluster"]["nnodes"] == 2
    assert manifest["scenario"]["seed"] == 3
    assert manifest["scenario"]["node"]["disks"][0]["scheduler"]["kind"] \
        == "clook"
    assert set(manifest["traces"]) == {"0", "1"}
    assert manifest["metrics"]["total_requests"] > 0
    for path in catalog.trace_paths("baseline").values():
        assert path.is_file()


def test_streamed_trace_matches_gathered_trace(sunk_run):
    """The streamed per-node files hold exactly the drained records."""
    root, runner, result = sunk_run
    catalog = RunCatalog(root)
    readers = catalog.open_traces("baseline")
    assert set(readers) == {0, 1}
    for node_id, reader in readers.items():
        with reader:
            streamed = reader.read()
            # the in-memory result was additionally windowed to the
            # experiment duration; the streamed capture is the superset
            gathered = result.trace.node(node_id).records
            assert len(streamed) >= len(gathered)
            assert np.array_equal(streamed[:len(gathered)], gathered)
            assert not reader.recovered


def test_load_dataset_merges_nodes_time_sorted(sunk_run):
    root, runner, result = sunk_run
    dataset = RunCatalog(root).load_dataset("baseline")
    assert isinstance(dataset, TraceDataset)
    assert len(dataset) >= len(result.trace)
    assert np.all(np.diff(dataset.time) >= 0)
    assert set(dataset.nodes()) == {0, 1}


def test_replay_streams_from_stored_trace(sunk_run):
    root, runner, result = sunk_run
    path = RunCatalog(root).trace_paths("baseline")[0]
    with TraceReader(path) as reader:
        report = replay_trace(reader, scheduler="fifo")
        assert report.requests == len(reader)
        assert report.mean_latency > 0


def test_run_names_deduplicate(tmp_path):
    catalog = RunCatalog(tmp_path)
    arr = np.zeros(4, dtype=TraceDataset.empty().records.dtype)
    arr["time"] = [0.0, 1.0, 2.0, 3.0]
    arr["node"] = [0, 0, 1, 1]

    class FakeResult:
        name = "demo"
        nnodes = 2
        trace = TraceDataset(arr)
        duration = 3.0

        @property
        def metrics(self):
            from repro.core.metrics import compute_metrics
            return compute_metrics(self.trace, label="demo", duration=3.0)

    first = catalog.save(FakeResult(), seed=1)
    second = catalog.save(FakeResult(), seed=2)
    assert first.name == "demo"
    assert second.name == "demo-2"
    assert catalog.runs() == ["demo", "demo-2"]


def test_save_splits_per_node(tmp_path):
    runner = ExperimentRunner(nnodes=2, seed=0)
    result = runner.run("baseline", duration=80.0)
    catalog = RunCatalog(tmp_path / "runs")
    directory = catalog.save(result, seed=0)
    manifest = json.loads((directory / "manifest.json").read_text())
    assert manifest["records"] == len(result.trace)
    merged = catalog.load_dataset("baseline")
    assert merged == result.trace


def test_missing_run_raises(tmp_path):
    catalog = RunCatalog(tmp_path)
    with pytest.raises(FileNotFoundError):
        catalog.manifest("nope")


def test_catalog_scenario_accessor(sunk_run):
    from repro.config import Scenario
    root, runner, result = sunk_run
    scenario = RunCatalog(root).scenario("baseline")
    assert isinstance(scenario, Scenario)
    assert scenario == runner.scenario
    assert scenario.cluster.nnodes == 2


def test_legacy_v1_manifest_still_loads(tmp_path):
    """Manifests written before the scenario layer stay readable."""
    catalog = RunCatalog(tmp_path / "runs")
    capture = catalog.start_run("legacy", nnodes=1, seed=0,
                                config={"nnodes": 1})
    capture.writer_for(0)
    path = capture.finalize()
    # rewrite as a v1 manifest with no scenario block, as old captures
    # produced
    manifest = json.loads(path.read_text())
    manifest["format"] = "repro-run-v1"
    manifest.pop("scenario", None)
    path.write_text(json.dumps(manifest))

    loaded = catalog.manifest("legacy")
    assert loaded["format"] == "repro-run-v1"
    assert loaded["config"] == {"nnodes": 1}
    assert catalog.scenario("legacy") is None
    assert catalog.metrics("legacy").label == "legacy"


def test_unknown_manifest_format_rejected(tmp_path):
    catalog = RunCatalog(tmp_path / "runs")
    capture = catalog.start_run("future", nnodes=1)
    path = capture.finalize()
    manifest = json.loads(path.read_text())
    manifest["format"] = "repro-run-v99"
    path.write_text(json.dumps(manifest))
    with pytest.raises(ValueError):
        catalog.manifest("future")


def test_concurrent_writers_claim_distinct_runs(tmp_path):
    """Regression: two writers racing into one catalog must not collide.

    The old exists-then-pick-a-name scheme let both sides choose the
    same directory and interleave files; mkdir-based claiming gives each
    a distinct run id and the tmp+rename manifest write keeps every
    manifest whole.
    """
    from concurrent.futures import ThreadPoolExecutor

    catalog = RunCatalog(tmp_path / "runs")
    nwriters = 8

    def one_run(seed):
        arr = np.zeros(6, dtype=TraceDataset.empty().records.dtype)
        arr["time"] = np.arange(6, dtype=float)
        arr["node"] = [0, 1] * 3
        arr["sector"] = seed  # distinguishable payloads
        capture = catalog.start_run("combined", nnodes=2, seed=seed)
        for node_id in (0, 1):
            capture.writer_for(node_id).append_array(
                arr[arr["node"] == node_id])
        capture.finalize()
        return capture.directory

    with ThreadPoolExecutor(max_workers=nwriters) as pool:
        directories = list(pool.map(one_run, range(nwriters)))

    assert len({d.name for d in directories}) == nwriters
    runs = catalog.runs()
    assert len(runs) == nwriters
    seeds_seen = set()
    for run_id in runs:
        manifest = catalog.manifest(run_id)   # valid, complete JSON
        assert manifest["records"] == 6
        assert set(manifest["traces"]) == {"0", "1"}
        seeds_seen.add(manifest["seed"])
        dataset = catalog.load_dataset(run_id)
        assert len(dataset) == 6
        assert set(dataset.records["sector"]) == {manifest["seed"]}
    assert seeds_seen == set(range(nwriters))


def test_parallel_run_all_with_sink_keeps_catalog_consistent(tmp_path):
    """run_all(parallel=True, sink=...) writes every run exactly once."""
    root = tmp_path / "runs"
    runner = ExperimentRunner(nnodes=1, seed=4, baseline_duration=60.0,
                              sink=root)
    results = runner.run_all(names=["nbody", "wavelet"], parallel=True)
    catalog = RunCatalog(root)
    assert sorted(results) == ["nbody", "wavelet"]
    assert catalog.runs() == ["nbody", "wavelet"]
    for name, result in results.items():
        manifest = catalog.manifest(name)
        assert manifest["records"] >= len(result.trace)


def test_finalize_writes_manifest_atomically(tmp_path):
    """No manifest.json.tmp debris and finalize is idempotent."""
    catalog = RunCatalog(tmp_path / "runs")
    capture = catalog.start_run("atomic", nnodes=1, seed=0)
    capture.writer_for(0)
    path = capture.finalize()
    assert path.name == "manifest.json"
    assert capture.finalize() == path   # idempotent
    leftovers = list((tmp_path / "runs").rglob("*.tmp"))
    assert leftovers == []
    manifest = catalog.manifest("atomic")
    assert manifest["records"] == 0
