"""Run catalog layout, experiment sink wiring, and streamed replay."""

import json

import numpy as np
import pytest

from repro.core import ExperimentRunner
from repro.core.trace import TraceDataset
from repro.store import RunCatalog, TraceReader
from repro.synth.replay import replay_trace


@pytest.fixture(scope="module")
def sunk_run(tmp_path_factory):
    """One small baseline experiment streamed into a catalog."""
    root = tmp_path_factory.mktemp("catalog") / "runs"
    runner = ExperimentRunner(nnodes=2, seed=3, sink=root)
    result = runner.run_baseline(duration=120.0)
    return root, runner, result


def test_sink_produces_manifest_and_per_node_files(sunk_run):
    root, runner, result = sunk_run
    catalog = RunCatalog(root)
    assert catalog.runs() == ["baseline"]
    manifest = catalog.manifest("baseline")
    assert manifest["format"] == "repro-run-v1"
    assert manifest["nnodes"] == 2
    assert manifest["seed"] == 3
    assert manifest["config"]["nnodes"] == 2
    assert set(manifest["traces"]) == {"0", "1"}
    assert manifest["metrics"]["total_requests"] > 0
    for path in catalog.trace_paths("baseline").values():
        assert path.is_file()


def test_streamed_trace_matches_gathered_trace(sunk_run):
    """The streamed per-node files hold exactly the drained records."""
    root, runner, result = sunk_run
    catalog = RunCatalog(root)
    readers = catalog.open_traces("baseline")
    assert set(readers) == {0, 1}
    for node_id, reader in readers.items():
        with reader:
            streamed = reader.read()
            # the in-memory result was additionally windowed to the
            # experiment duration; the streamed capture is the superset
            gathered = result.trace.node(node_id).records
            assert len(streamed) >= len(gathered)
            assert np.array_equal(streamed[:len(gathered)], gathered)
            assert not reader.recovered


def test_load_dataset_merges_nodes_time_sorted(sunk_run):
    root, runner, result = sunk_run
    dataset = RunCatalog(root).load_dataset("baseline")
    assert isinstance(dataset, TraceDataset)
    assert len(dataset) >= len(result.trace)
    assert np.all(np.diff(dataset.time) >= 0)
    assert set(dataset.nodes()) == {0, 1}


def test_replay_streams_from_stored_trace(sunk_run):
    root, runner, result = sunk_run
    path = RunCatalog(root).trace_paths("baseline")[0]
    with TraceReader(path) as reader:
        report = replay_trace(reader, scheduler="fifo")
        assert report.requests == len(reader)
        assert report.mean_latency > 0


def test_run_names_deduplicate(tmp_path):
    catalog = RunCatalog(tmp_path)
    arr = np.zeros(4, dtype=TraceDataset.empty().records.dtype)
    arr["time"] = [0.0, 1.0, 2.0, 3.0]
    arr["node"] = [0, 0, 1, 1]

    class FakeResult:
        name = "demo"
        nnodes = 2
        trace = TraceDataset(arr)
        duration = 3.0

        @property
        def metrics(self):
            from repro.core.metrics import compute_metrics
            return compute_metrics(self.trace, label="demo", duration=3.0)

    first = catalog.save(FakeResult(), seed=1)
    second = catalog.save(FakeResult(), seed=2)
    assert first.name == "demo"
    assert second.name == "demo-2"
    assert catalog.runs() == ["demo", "demo-2"]


def test_save_splits_per_node(tmp_path):
    runner = ExperimentRunner(nnodes=2, seed=0)
    result = runner.run_baseline(duration=80.0)
    catalog = RunCatalog(tmp_path / "runs")
    directory = catalog.save(result, seed=0)
    manifest = json.loads((directory / "manifest.json").read_text())
    assert manifest["records"] == len(result.trace)
    merged = catalog.load_dataset("baseline")
    assert merged == result.trace


def test_missing_run_raises(tmp_path):
    catalog = RunCatalog(tmp_path)
    with pytest.raises(FileNotFoundError):
        catalog.manifest("nope")
