"""Snapshot of the public API surface.

Each package's ``__all__`` is pinned verbatim: adding, renaming, or
removing a public symbol must update this file in the same change, which
is the point — the surface only moves on purpose.  (This is the test
that catches an accidental re-export, a forgotten removal, or a helper
leaking out of a refactor.)
"""

import importlib

import pytest

PUBLIC_API = {
    "repro": ["__version__"],
    "repro.serve": [
        "ACTIVE_STATES",
        "AnalysisAnswer",
        "ApiError",
        "AuthError",
        "DEFAULT_CATALOG",
        "DependencyCycle",
        "EventLog",
        "ExperimentService",
        "Job",
        "JobError",
        "JobNotFound",
        "JobStore",
        "QuotaExceeded",
        "STATES",
        "ServeClient",
        "ServeError",
        "TERMINAL_STATES",
        "Tenant",
        "Tenants",
        "WorkerPool",
        "catalog_root",
        "execute_job",
        "render_jobs_table",
    ],
    "repro.config": [
        "ClusterConfig",
        "ConfigError",
        "DiskConfig",
        "DriveCacheConfig",
        "DriverConfig",
        "EngineConfig",
        "ExperimentConfig",
        "GRID_ALIASES",
        "LayoutConfig",
        "NetworkConfig",
        "NodeConfig",
        "PiousConfig",
        "Scenario",
        "SchedulerConfig",
        "SweepAxis",
        "SweepPoint",
        "SweepResult",
        "VMConfig",
        "VolumeConfig",
        "WorkloadConfig",
        "expand_grid",
        "parse_axis_spec",
        "render_sweep_table",
        "run_sweep",
        "sweep_to_json",
    ],
    "repro.analysis": [
        "Accumulator",
        "AnalysisEngine",
        "ArrivalPipeline",
        "BandCounts",
        "BinnedCounts",
        "Count",
        "DEFAULT_PIPELINES",
        "FileInfo",
        "GapStats",
        "HotSectors",
        "HotSectorsPipeline",
        "Log2Histogram",
        "MeanVar",
        "MetricsPipeline",
        "MinMax",
        "PIPELINES",
        "Pipeline",
        "ReservoirSample",
        "RunContext",
        "SizeDistribution",
        "SizeHistogramPipeline",
        "SpatialLocalityPipeline",
        "Sum",
        "TopK",
        "ValueCounts",
        "make_pipelines",
        "merged_time_blocks",
        "run_signature",
        "scan_file",
    ],
}


@pytest.mark.parametrize("package", sorted(PUBLIC_API))
def test_all_matches_snapshot(package):
    module = importlib.import_module(package)
    assert sorted(module.__all__) == sorted(PUBLIC_API[package]), \
        f"{package}.__all__ drifted from the snapshot"
    # and every promised name actually resolves
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


def test_serve_exports_typed_errors():
    import repro.serve as serve
    for name in ("ServeError", "JobNotFound", "AuthError",
                 "QuotaExceeded", "DependencyCycle"):
        assert name in serve.__all__
        assert issubclass(getattr(serve, name), serve.ServeError)


def test_runner_shims_are_gone():
    from repro.core import ExperimentRunner
    for name in ("run_baseline", "run_single", "run_combined",
                 "run_serial"):
        assert name not in ExperimentRunner.__dict__
        assert name not in dir(ExperimentRunner)
