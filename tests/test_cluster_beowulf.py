"""Integration tests for the Beowulf cluster builder and PIOUS."""

import numpy as np
import pytest

from repro.cluster import BeowulfCluster, PIOUS
from tests.conftest import drive


@pytest.fixture
def small_cluster(sim):
    return BeowulfCluster(sim, nnodes=4, seed=7)


def test_cluster_builds_requested_nodes(sim, small_cluster):
    assert len(small_cluster) == 4
    assert small_cluster.pvm.ntasks == 4
    assert [n.node_id for n in small_cluster.nodes] == [0, 1, 2, 3]


def test_invalid_node_count(sim):
    with pytest.raises(ValueError):
        BeowulfCluster(sim, nnodes=0)


def test_spawn_on_all_runs_one_task_per_node(sim, small_cluster):
    ran = []

    def factory(node):
        def app():
            yield sim.timeout(1.0)
            ran.append(node.node_id)
        return app()

    procs = small_cluster.spawn_on_all(factory)
    sim.run(until=5.0)
    assert sorted(ran) == [0, 1, 2, 3]
    assert all(p.triggered for p in procs)


def test_gather_traces_merges_and_sorts(sim, small_cluster):
    sim.run(until=120.0)
    arr = small_cluster.gather_traces()
    assert len(arr) > 0
    assert set(np.unique(arr["node"])) <= {0, 1, 2, 3}
    assert (np.diff(arr["time"]) >= 0).all()


def test_reset_trace_clocks_drops_history(sim, small_cluster):
    sim.run(until=60.0)
    small_cluster.reset_trace_clocks()
    sim.run(until=90.0)
    arr = small_cluster.gather_traces()
    assert arr["time"].max() <= 30.0 + 1e-9


def test_parallel_app_with_barrier_synchronises(sim, small_cluster):
    finish = {}

    def factory(node):
        def app():
            yield from node.kernel.cpu.execute(0.5 * (node.node_id + 1))
            yield from node.pvm.barrier("sync", node.node_id,
                                        count=len(small_cluster))
            finish[node.node_id] = sim.now
        return app()

    small_cluster.spawn_on_all(factory)
    sim.run(until=10.0)
    times = list(finish.values())
    assert max(times) - min(times) < 1e-6  # all released together
    assert max(times) == pytest.approx(2.0)  # slowest node dominates


def test_pious_striped_write_hits_multiple_nodes(sim, small_cluster):
    pious = PIOUS(small_cluster, stripe_kb=4)

    def client():
        handle = pious.create("bigfile", client_node=0)
        yield from handle.write(64 * 1024)  # 16 stripes over 4 servers

    small_cluster.reset_trace_clocks()
    sim.process(client())
    sim.run(until=60.0)
    arr = small_cluster.gather_traces()
    writes = arr[arr["write"] == 1]
    assert len(set(writes["node"])) == 4  # every server's disk touched
    assert pious.requests_served == 16


def test_pious_read_back_after_write(sim, small_cluster):
    pious = PIOUS(small_cluster, stripe_kb=4, servers=[1, 2])

    def client():
        handle = pious.create("f", client_node=0)
        yield from handle.write(32 * 1024)
        handle.seek(0)
        n = yield from handle.read(32 * 1024)
        return n

    assert drive(sim, client(), until=120.0) == 32 * 1024
    # server-local partial files exist on the chosen servers only
    assert small_cluster.nodes[1].kernel.fs.exists("/pious/f.part")
    assert not small_cluster.nodes[0].kernel.fs.exists("/pious/f.part")


def test_pious_open_missing_and_duplicate(sim, small_cluster):
    pious = PIOUS(small_cluster)
    with pytest.raises(KeyError):
        pious.open("ghost")
    pious.create("once")
    with pytest.raises(ValueError):
        pious.create("once")


def test_pious_stripe_map_round_robin():
    from repro.cluster.pious import _StripeMap
    m = _StripeMap("f", stripe_bytes=1024, servers=[10, 11, 12])
    chunks = list(m.chunks(0, 4096))
    assert [c[0] for c in chunks] == [10, 11, 12, 10]
    assert chunks[3][1] == 1024  # second unit on server 10 at local 1 KB
    # offsets within a stripe unit
    sub = list(m.chunks(512, 1024))
    assert sub == [(10, 512, 512), (11, 0, 512)]


from hypothesis import given, settings, strategies as st


@settings(deadline=None, max_examples=50)
@given(st.integers(min_value=0, max_value=10**6),
       st.integers(min_value=1, max_value=10**5),
       st.integers(min_value=1, max_value=8),
       st.integers(min_value=1, max_value=64))
def test_stripe_chunks_partition_exactly(offset, nbytes, nservers, stripe_kb):
    from repro.cluster.pious import _StripeMap
    m = _StripeMap("f", stripe_bytes=stripe_kb * 1024,
                   servers=list(range(nservers)))
    chunks = list(m.chunks(offset, nbytes))
    # chunks cover exactly [offset, offset+nbytes) in order
    assert sum(c[2] for c in chunks) == nbytes
    # every chunk stays within one stripe unit
    for server, local, size in chunks:
        assert 0 <= server < nservers
        assert size <= stripe_kb * 1024
        assert local >= 0
    # reconstruct logical offsets: consecutive units round-robin
    pos = offset
    for server, local, size in chunks:
        unit = pos // (stripe_kb * 1024)
        assert server == unit % nservers
        expected_local = (unit // nservers) * (stripe_kb * 1024) \
            + (pos - unit * stripe_kb * 1024)
        assert local == expected_local
        pos += size
    assert pos == offset + nbytes
