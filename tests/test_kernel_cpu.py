"""Unit tests for the time-sliced CPU."""

import pytest

from repro.kernel import CPU
from repro.sim import Simulator
from tests.conftest import drive


def test_single_process_runs_at_full_speed():
    sim = Simulator()
    cpu = CPU(sim, speed=1.0, timeslice=0.1)
    drive(sim, cpu.execute(2.0))
    assert sim.now == pytest.approx(2.0)
    assert cpu.busy_time == pytest.approx(2.0)


def test_speed_scales_duration():
    sim = Simulator()
    cpu = CPU(sim, speed=2.0, timeslice=0.1)
    drive(sim, cpu.execute(2.0))
    assert sim.now == pytest.approx(1.0)


def test_two_processes_share_fairly():
    sim = Simulator()
    cpu = CPU(sim, speed=1.0, timeslice=0.1)
    finish = {}

    def job(name, seconds):
        yield from cpu.execute(seconds)
        finish[name] = sim.now

    sim.process(job("a", 1.0))
    sim.process(job("b", 1.0))
    sim.run()
    # Interleaved round-robin: both finish near 2.0, neither at 1.0.
    assert finish["a"] == pytest.approx(2.0, abs=0.2)
    assert finish["b"] == pytest.approx(2.0, abs=0.2)


def test_short_job_not_starved_by_long_job():
    sim = Simulator()
    cpu = CPU(sim, speed=1.0, timeslice=0.1)
    finish = {}

    def job(name, seconds):
        yield from cpu.execute(seconds)
        finish[name] = sim.now

    sim.process(job("long", 10.0))
    sim.process(job("short", 0.5))
    sim.run()
    assert finish["short"] == pytest.approx(1.0, abs=0.2)  # ~2x stretch
    assert finish["long"] == pytest.approx(10.5, abs=0.2)


def test_zero_compute_is_instant():
    sim = Simulator()
    cpu = CPU(sim, timeslice=0.1)
    drive(sim, cpu.execute(0.0))
    assert sim.now == 0.0


def test_invalid_parameters():
    sim = Simulator()
    with pytest.raises(ValueError):
        CPU(sim, speed=0)
    with pytest.raises(ValueError):
        CPU(sim, timeslice=0)
    cpu = CPU(sim)
    with pytest.raises(ValueError):
        drive(sim, cpu.execute(-1.0))


def test_load_reflects_contention():
    sim = Simulator()
    cpu = CPU(sim, timeslice=0.5)
    observed = []

    def job():
        yield from cpu.execute(1.0)

    def observer():
        yield sim.timeout(0.25)
        observed.append(cpu.load)

    sim.process(job())
    sim.process(job())
    sim.process(observer())
    sim.run()
    assert observed[0] == 2
