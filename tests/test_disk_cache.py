"""Unit tests for the on-drive segment cache and SCAN scheduler."""

import numpy as np
import pytest

from repro.disk import Disk, DriveCache, IORequest, ScanScheduler
from repro.sim import Simulator


# -- DriveCache unit -----------------------------------------------------------

def test_lookup_miss_then_hit_after_fill():
    cache = DriveCache(lookahead_sectors=64)
    assert not cache.lookup(100, 8)
    cache.fill_after_read(100, 8)
    assert cache.lookup(100, 8)
    assert cache.lookup(108, 8)    # inside the look-ahead span
    assert cache.hit_ratio == pytest.approx(2 / 3)


def test_lookahead_clipped_to_disk_end():
    cache = DriveCache(lookahead_sectors=64)
    start, end = cache.fill_after_read(990, 8, disk_sectors=1000)
    assert end == 1000


def test_span_clipped_to_segment_capacity():
    cache = DriveCache(segment_sectors=32, lookahead_sectors=64)
    start, end = cache.fill_after_read(100, 8)
    assert end - start == 32
    assert end == 100 + 8 + 64


def test_lru_segment_replacement():
    cache = DriveCache(nsegments=2, lookahead_sectors=0)
    cache.fill_after_read(0, 8)
    cache.fill_after_read(1000, 8)
    assert cache.lookup(0, 8)          # touch segment A
    cache.fill_after_read(2000, 8)     # evicts LRU = segment B
    assert cache.lookup(0, 8)
    assert not cache.lookup(1000, 8)


def test_write_invalidates_overlap():
    cache = DriveCache(lookahead_sectors=0)
    cache.fill_after_read(100, 16)
    assert cache.invalidate(108, 4) == 1
    assert not cache.lookup(100, 8)
    assert cache.invalidate(500, 4) == 0


def test_cache_validation():
    with pytest.raises(ValueError):
        DriveCache(nsegments=0)
    with pytest.raises(ValueError):
        DriveCache(lookahead_sectors=-1)


# -- integration with the disk device -------------------------------------------

def sequential_read_total_time(cache):
    sim = Simulator()
    disk = Disk(sim, rng=np.random.default_rng(0), cache=cache)
    reqs = [IORequest(sector=1000 + 2 * i, nsectors=2, is_write=False)
            for i in range(20)]

    def issuer():
        for req in reqs:
            yield disk.submit(req)

    sim.process(issuer())
    sim.run()
    return sim.now, disk


def test_drive_cache_accelerates_sequential_reads():
    t_without, _ = sequential_read_total_time(None)
    t_with, disk = sequential_read_total_time(DriveCache())
    assert t_with < 0.5 * t_without
    assert disk.cache.hits > 10


def test_write_through_invalidation_on_device():
    sim = Simulator()
    cache = DriveCache(lookahead_sectors=64)
    disk = Disk(sim, rng=np.random.default_rng(0), cache=cache)

    def scenario():
        yield disk.submit(IORequest(sector=100, nsectors=2, is_write=False))
        assert cache.lookup(102, 2)             # look-ahead cached
        yield disk.submit(IORequest(sector=102, nsectors=2, is_write=True))
        assert not cache.lookup(102, 2)         # invalidated by the write

    sim.process(scenario())
    sim.run()


# -- SCAN scheduler ---------------------------------------------------------

def _drain(sched, head):
    order = []
    while len(sched):
        r = sched.next(head)
        order.append(r.sector)
        head = r.sector
    return order


def test_scan_sweeps_up_then_reverses():
    s = ScanScheduler()
    for sector in (50, 500, 200, 900):
        s.add(IORequest(sector=sector, nsectors=2, is_write=False))
    assert _drain(s, head=100) == [200, 500, 900, 50]


def test_scan_reverses_back_up():
    s = ScanScheduler()
    for sector in (300, 100, 400):
        s.add(IORequest(sector=sector, nsectors=2, is_write=False))
    # head 350: up -> 400, then down -> 300, 100
    assert _drain(s, head=350) == [400, 300, 100]
    # direction is now downward; add below and above
    for sector in (50, 800):
        s.add(IORequest(sector=sector, nsectors=2, is_write=False))
    assert _drain(s, head=100) == [50, 800]


def test_scan_serves_everything():
    rng = np.random.default_rng(2)
    sectors = rng.integers(0, 10**6, size=50).tolist()
    s = ScanScheduler()
    for sector in sectors:
        s.add(IORequest(sector=sector, nsectors=2, is_write=False))
    assert sorted(_drain(s, head=0)) == sorted(sectors)
