"""End-to-end checkpoint/resume correctness.

The bar is bit-identity: run to T, checkpoint, restore (same process or
a fresh one), continue to the end — the trace records, duration, and
per-app statistics must equal the uninterrupted run's exactly, for every
disk scheduler and both event-queue engines.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.checkpoint import (
    CheckpointError,
    capture_state,
    drain_to_quiescence,
    load_checkpoint,
    tree_equal,
    verify_restored_queue,
)
from repro.config import Scenario
from repro.core.experiments import ExperimentRunner

SCHEDULERS = ("fifo", "sstf", "scan", "clook")
ENGINES = ("heap", "calendar")

TINY_PPM = {
    "cluster": {"nnodes": 2},
    "workload": {"params": {"ppm": {"grids": 1, "grid_nx": 24,
                                    "grid_ny": 48, "steps": 6,
                                    "nnodes": 2}}},
}


def scenario(engine="calendar", scheduler="clook", seed=11, extra=None):
    data = dict(extra or {})
    data.setdefault("cluster", {"nnodes": 2})
    data["seed"] = seed
    data["engine"] = {"event_queue": engine}
    sc = Scenario.from_dict(data)
    return sc.with_override("node.disks[*].scheduler.kind", scheduler)


def assert_identical(a, b):
    assert np.array_equal(a.trace.records, b.trace.records)
    assert a.duration == b.duration
    assert a.metrics.to_dict() == b.metrics.to_dict()
    for app, stats in a.app_stats.items():
        assert stats == b.app_stats.get(app)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("scheduler,seed",
                         [(s, 11) for s in SCHEDULERS] + [("clook", 23)])
def test_baseline_resume_is_bit_identical(tmp_path, scheduler, engine, seed):
    sc = scenario(engine=engine, scheduler=scheduler, seed=seed)
    ck = tmp_path / "ck"
    armed = ExperimentRunner(scenario=sc).run(
        "baseline", duration=12.0, checkpoint_every=5.0, checkpoint_dir=ck)
    ckpt = ck / "baseline.ckpt"
    assert ckpt.exists()
    resumed = ExperimentRunner(scenario=sc).run("baseline", resume_from=ckpt)
    assert_identical(armed, resumed)


@pytest.mark.parametrize("engine", ENGINES)
def test_app_resume_is_bit_identical(tmp_path, engine):
    sc = scenario(engine=engine, extra=TINY_PPM)
    ck = tmp_path / "ck"
    armed = ExperimentRunner(scenario=sc).run(
        "ppm", checkpoint_every=0.05, checkpoint_dir=ck)
    ckpt = ck / "ppm.ckpt"
    assert ckpt.exists()
    resumed = ExperimentRunner(scenario=sc).run("ppm", resume_from=ckpt)
    assert_identical(armed, resumed)


def test_armed_run_equals_unarmed_run(tmp_path):
    """Checkpointing must not perturb the simulation it observes."""
    sc = scenario()
    plain = ExperimentRunner(scenario=sc).run("baseline", duration=12.0)
    armed = ExperimentRunner(scenario=sc).run(
        "baseline", duration=12.0, checkpoint_every=5.0,
        checkpoint_dir=tmp_path / "ck")
    assert_identical(plain, armed)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_restore_is_idempotent(tmp_path, scheduler, engine):
    """Property: load tree -> rebuild stack -> capture again == same tree.

    Holds for every scheduler x engine: a restore must reconstruct
    exactly the state that was captured, nothing drifted.
    """
    sc = scenario(engine=engine, scheduler=scheduler)
    ck = tmp_path / "ck"
    runner = ExperimentRunner(scenario=sc)
    runner.run("baseline", duration=12.0, checkpoint_every=5.0,
               checkpoint_dir=ck)
    tree = load_checkpoint(ck / "baseline.ckpt")

    fresh = ExperimentRunner(scenario=sc)
    sim, cluster = fresh._resume_build(tree)
    drain_to_quiescence(sim)
    verify_restored_queue(sim, tree)
    fresh._restore_obs(tree)
    again = capture_state(sim, cluster, obs=fresh._registry(),
                          meta=tree["meta"])
    assert tree_equal(tree, again)


def test_resume_in_fresh_process_is_bit_identical(tmp_path):
    """The real crash-recovery story: restore in a brand new interpreter."""
    sc = scenario()
    ck = tmp_path / "ck"
    armed = ExperimentRunner(scenario=sc).run(
        "baseline", duration=12.0, checkpoint_every=5.0, checkpoint_dir=ck)
    script = (
        "import json, sys, hashlib\n"
        "from pathlib import Path\n"
        "from repro.config import Scenario\n"
        "from repro.core.experiments import ExperimentRunner\n"
        "sc_dict, ckpt = json.loads(sys.argv[1]), sys.argv[2]\n"
        "sc = Scenario.from_dict(sc_dict)\n"
        "r = ExperimentRunner(scenario=sc).run('baseline',"
        " resume_from=ckpt)\n"
        "print(json.dumps({'sha':"
        " hashlib.sha256(r.trace.records.tobytes()).hexdigest(),"
        " 'n': len(r.trace.records), 'duration': r.duration}))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script, json.dumps(sc.to_dict()),
         str(ck / "baseline.ckpt")],
        capture_output=True, text=True, timeout=300,
        cwd=str(Path(__file__).resolve().parent.parent))
    assert out.returncode == 0, out.stderr
    got = json.loads(out.stdout.strip().splitlines()[-1])
    import hashlib
    assert got["n"] == len(armed.trace.records)
    assert got["sha"] == hashlib.sha256(
        armed.trace.records.tobytes()).hexdigest()
    assert got["duration"] == armed.duration


def test_resume_rejects_mismatched_scenario(tmp_path):
    sc = scenario(seed=11)
    ck = tmp_path / "ck"
    ExperimentRunner(scenario=sc).run(
        "baseline", duration=12.0, checkpoint_every=5.0, checkpoint_dir=ck)
    other = scenario(seed=99)
    with pytest.raises(CheckpointError, match="scenario"):
        ExperimentRunner(scenario=other).run(
            "baseline", resume_from=ck / "baseline.ckpt")


def test_resume_rejects_wrong_experiment(tmp_path):
    sc = scenario()
    ck = tmp_path / "ck"
    ExperimentRunner(scenario=sc).run(
        "baseline", duration=12.0, checkpoint_every=5.0, checkpoint_dir=ck)
    with pytest.raises(CheckpointError):
        ExperimentRunner(scenario=sc).run(
            "ppm", resume_from=ck / "baseline.ckpt")
