"""Unit tests for TraceDataset."""

import numpy as np
import pytest

from repro.core import TraceDataset


@pytest.fixture
def ds():
    return TraceDataset.from_records([
        (0.0, 100, 0, 1, 1.0, 0),
        (1.0, 200, 1, 2, 4.0, 0),
        (2.0, 300, 1, 1, 1.0, 1),
        (3.0, 100, 0, 1, 16.0, 1),
    ])


def test_len_and_fields(ds):
    assert len(ds) == 4
    assert list(ds.sector) == [100, 200, 300, 100]
    assert ds.duration == 3.0


def test_wrong_dtype_rejected():
    with pytest.raises(TypeError):
        TraceDataset(np.zeros(3, dtype=np.float64))


def test_empty(ds):
    empty = TraceDataset.empty()
    assert len(empty) == 0
    assert empty.duration == 0.0


def test_read_write_filters(ds):
    assert len(ds.reads()) == 2
    assert len(ds.writes()) == 2
    assert set(ds.reads().sector) == {100}


def test_node_filter(ds):
    assert len(ds.node(0)) == 2
    assert len(ds.node(1)) == 2
    assert list(ds.nodes()) == [0, 1]


def test_time_window(ds):
    window = ds.between(1.0, 3.0)
    assert list(window.time) == [1.0, 2.0]


def test_sector_range(ds):
    assert len(ds.sector_range(150, 350)) == 2


def test_merge_sorts_by_time():
    a = TraceDataset.from_records([(5.0, 1, 0, 1, 1.0, 0)])
    b = TraceDataset.from_records([(2.0, 2, 1, 1, 1.0, 1)])
    merged = a.merged_with(b)
    assert list(merged.time) == [2.0, 5.0]


def test_unknown_attribute_raises(ds):
    with pytest.raises(AttributeError):
        ds.bogus


def test_npy_roundtrip(tmp_path, ds):
    path = tmp_path / "trace.npy"
    ds.save(path)
    assert TraceDataset.load(path) == ds


def test_csv_roundtrip(tmp_path, ds):
    path = tmp_path / "trace.csv"
    ds.save(path)
    loaded = TraceDataset.load(path)
    assert len(loaded) == len(ds)
    assert np.allclose(loaded.time, ds.time)
    assert np.array_equal(loaded.sector, ds.sector)
    assert np.array_equal(loaded.write, ds.write)


def test_equality(ds):
    assert ds == TraceDataset(ds.records.copy())
    assert ds != TraceDataset.empty()


def test_suffixless_roundtrip(tmp_path, ds):
    """Regression: save("trace") let np.save append .npy behind the
    caller's back, and load("trace") then missed the file."""
    path = tmp_path / "trace"
    ds.save(path)
    assert TraceDataset.load(path) == ds
    # the normalised spelling works too, and no bare file was left
    assert TraceDataset.load(tmp_path / "trace.npy") == ds
    assert not path.exists()


def test_unknown_suffix_roundtrip(tmp_path, ds):
    path = tmp_path / "trace.dat"
    ds.save(path)
    assert TraceDataset.load(path) == ds


def test_rpt_roundtrip(tmp_path, ds):
    path = tmp_path / "trace.rpt"
    ds.save(path)
    assert TraceDataset.load(path) == ds


def test_save_returns_written_path(tmp_path, ds):
    assert ds.save(tmp_path / "t.npy") == tmp_path / "t.npy"
    assert ds.save(tmp_path / "t.csv") == tmp_path / "t.csv"
    assert ds.save(tmp_path / "t.rpt") == tmp_path / "t.rpt"
    # suffix-less spellings report the .npy they were normalised to
    assert ds.save(tmp_path / "bare") == tmp_path / "bare.npy"


def test_save_load_accept_str_paths(tmp_path, ds):
    written = ds.save(str(tmp_path / "t.npy"))
    assert written == tmp_path / "t.npy"
    assert TraceDataset.load(str(written)) == ds
