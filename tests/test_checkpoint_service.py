"""Checkpointing at the service layers: sweeps, serve jobs, and the CLI.

A preempted sweep must restart where it stopped (done markers skip
finished points, live checkpoints resume interrupted ones), and a serve
job whose worker dies mid-sweep must resume without re-running the
points it already finished.
"""

import pytest

from repro.config import Scenario, parse_axis_spec, run_sweep
from repro.config.sweep import expand_grid
from repro.core.experiments import ExperimentRunner
from repro.serve.jobs import JobStore
from repro.serve.pool import (
    CHECKPOINTS_DIR,
    JOBS_DIR,
    catalog_root,
    execute_job,
)

BASE = {
    "cluster": {"nnodes": 2},
    "experiment": {"baseline_duration": 20.0},
}
GRID = ["scheduler=clook,fifo"]


def sweep(ck, **kw):
    return run_sweep(Scenario.from_dict(BASE),
                     [parse_axis_spec(s) for s in GRID],
                     experiment="baseline", duration=20.0, parallel=False,
                     checkpoint_every=6.0, checkpoint_dir=str(ck), **kw)


def test_sweep_done_markers_skip_finished_points(tmp_path):
    ck = tmp_path / "ck"
    first = sweep(ck)
    markers = sorted(p.name for p in ck.glob("*.done.json"))
    assert len(markers) == len(first) == 2
    assert not list(ck.glob("*.ckpt"))  # live checkpoints cleaned up

    # a rerun touches nothing: metrics come straight from the markers
    mtimes = {p.name: p.stat().st_mtime_ns for p in ck.glob("*.done.json")}
    second = sweep(ck)
    assert [r.metrics for r in first] == [r.metrics for r in second]
    assert {p.name: p.stat().st_mtime_ns
            for p in ck.glob("*.done.json")} == mtimes


def test_sweep_resumes_interrupted_point_bit_identically(tmp_path):
    ck = tmp_path / "ck"
    reference = sweep(ck)

    # preempt one point: drop its done marker, plant a mid-run checkpoint
    point = expand_grid(Scenario.from_dict(BASE),
                        [parse_axis_spec(s) for s in GRID])[0]
    fp = point.scenario.fingerprint()
    (ck / f"{fp}.done.json").unlink()
    ExperimentRunner(scenario=point.scenario).run(
        "baseline", duration=20.0, checkpoint_every=6.0,
        checkpoint_dir=str(ck / f"{fp}.ckpt"))
    assert (ck / f"{fp}.ckpt").exists()

    resumed = sweep(ck)
    assert [r.metrics for r in reference] == [r.metrics for r in resumed]
    assert not (ck / f"{fp}.ckpt").exists()


class WorkerDied(Exception):
    pass


def test_serve_job_killed_mid_sweep_resumes_completed_points(tmp_path):
    root = tmp_path
    store = JobStore(root / JOBS_DIR)
    job = store.create("sweep", {
        "scenario": BASE, "experiment": "baseline", "duration": 20.0,
        "grid": GRID, "parallel": False, "checkpoint_every": 6.0,
    })
    log = store.events(job.id)
    seen = []

    def dying_progress(event, **data):
        log.append(event, job=job.id, **data)
        seen.append(data)
        if event == "point" and data["k"] == 1:
            raise WorkerDied("simulated worker death after first point")

    with pytest.raises(WorkerDied):
        execute_job(job, root, progress=dying_progress)
    first_run_id = seen[0]["run_id"]
    ckdir = root / CHECKPOINTS_DIR / job.id
    assert list(ckdir.glob("*.done.json"))  # durable progress survived

    # recovery harvests the finished point's run id from the event log
    assert store.completed_run_ids(job.id) == [first_run_id]

    # the requeued job re-runs only the unfinished point
    cat = catalog_root(root)
    before = {p.name for p in cat.iterdir()} if cat.exists() else set()
    events = []
    outcome = execute_job(job, root,
                          progress=lambda e, **d: events.append((e, d)))
    new_runs = {p.name for p in cat.iterdir()} - before
    assert len(new_runs) == 1, "finished point was re-executed"
    assert len(outcome["summary"]) == 2
    assert not ckdir.exists()  # checkpoints cleaned up on completion
    skipped = [d for e, d in events if e == "point" and d["k"] == 1][0]
    assert skipped["run_id"] == first_run_id


def test_serve_experiment_job_resumes_from_checkpoint(tmp_path):
    root = tmp_path
    store = JobStore(root / JOBS_DIR)
    spec = {"scenario": {"cluster": {"nnodes": 2}}, "experiment": "baseline",
            "duration": 20.0, "checkpoint_every": 6.0}
    job = store.create("experiment", spec)

    # plant a mid-run checkpoint where a crashed worker would leave one
    ckdir = root / CHECKPOINTS_DIR / job.id
    ckdir.mkdir(parents=True)
    runner = ExperimentRunner(scenario=Scenario.from_dict(spec["scenario"]))
    reference = runner.run("baseline", duration=20.0, checkpoint_every=6.0,
                           checkpoint_dir=str(ckdir / "baseline.ckpt"))

    outcome = execute_job(job, root)
    assert outcome["summary"]["total_requests"] == \
        reference.metrics.to_dict()["total_requests"]
    assert not ckdir.exists()


def test_serve_spec_can_disable_checkpointing(tmp_path):
    root = tmp_path
    store = JobStore(root / JOBS_DIR)
    job = store.create("experiment", {
        "scenario": {"cluster": {"nnodes": 2}}, "experiment": "baseline",
        "duration": 20.0, "checkpoint_every": 0,
    })
    execute_job(job, root)
    assert not (root / CHECKPOINTS_DIR / job.id).exists()


# -- CLI flags -----------------------------------------------------------------
def test_cli_checkpoint_and_resume_round_trip(tmp_path, capsys):
    from repro.cli import main
    ck = tmp_path / "ck"
    rc = main(["baseline", "--nodes", "2", "--duration", "20",
               "--checkpoint-every", "6", "--checkpoint-dir", str(ck)])
    assert rc == 0
    ckpt = next(ck.glob("*.ckpt"))
    # resume takes the same scenario flags (the checkpoint is validated
    # against the scenario the runner is constructed from)
    rc = main(["baseline", "--nodes", "2", "--duration", "20",
               "--resume", str(ckpt)])
    assert rc == 0
    assert "resuming" in capsys.readouterr().err


def test_cli_resume_rejects_sweep_and_all(tmp_path, capsys):
    from repro.cli import main
    bogus = tmp_path / "x.ckpt"
    bogus.write_bytes(b"")
    for experiment in ("all", "sweep"):
        rc = main([experiment, "--resume", str(bogus)])
        assert rc == 2


def test_cli_resume_reports_bad_checkpoint_cleanly(tmp_path, capsys):
    from repro.cli import main
    bad = tmp_path / "bad.ckpt"
    bad.write_bytes(b"\xff" * 64)
    rc = main(["baseline", "--nodes", "2", "--resume", str(bad)])
    assert rc == 1
    assert "checkpoint" in capsys.readouterr().err.lower()
