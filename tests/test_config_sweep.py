"""Grid expansion, the sweep runner, and its comparison table."""

import json

import pytest

from repro.config import (
    ConfigError,
    GRID_ALIASES,
    Scenario,
    expand_grid,
    parse_axis_spec,
    render_sweep_table,
    run_sweep,
    sweep_to_json,
)


# -- axis parsing -------------------------------------------------------------
def test_parse_axis_spec_alias_and_values():
    axis = parse_axis_spec("scheduler=clook,fifo")
    assert axis.name == "scheduler"
    assert axis.path == "node.disks[*].scheduler.kind"
    assert axis.values == ("clook", "fifo")


def test_parse_axis_spec_dotted_path_passthrough():
    axis = parse_axis_spec("node.vm.ram_mb=16,32")
    assert axis.path == "node.vm.ram_mb"


def test_parse_axis_spec_rejects_malformed():
    for bad in ("scheduler", "=a,b", "x="):
        with pytest.raises(ConfigError):
            parse_axis_spec(bad)


def test_aliases_resolve_to_real_scenario_paths():
    scenario = Scenario()
    for alias, path in GRID_ALIASES.items():
        # every alias must descend cleanly (bogus paths raise)
        scenario.with_override(path, getattr_path(scenario, path))


def getattr_path(scenario, path):
    obj = scenario
    for part in path.split("."):
        if part.endswith("]"):               # disks[0] / disks[*]
            name, index = part[:-1].split("[")
            seq = getattr(obj, name)
            obj = seq[0 if index == "*" else int(index)]
        else:
            obj = getattr(obj, part)
    return obj


# -- expansion ----------------------------------------------------------------
def test_expand_grid_cross_product_and_labels():
    axes = [parse_axis_spec("scheduler=clook,fifo"),
            parse_axis_spec("drive_cache_segments=0,4")]
    points = expand_grid(Scenario(), axes)
    assert [p.label for p in points] == [
        "scheduler=clook,drive_cache_segments=0",
        "scheduler=clook,drive_cache_segments=4",
        "scheduler=fifo,drive_cache_segments=0",
        "scheduler=fifo,drive_cache_segments=4",
    ]
    # labels become the scenario names, values are applied and coerced
    assert points[2].scenario.name == points[2].label
    assert points[2].scenario.node.disk.scheduler.kind == "fifo"
    assert points[2].scenario.node.disk.cache.nsegments == 0
    # distinct stacks -> distinct fingerprints
    assert len({p.scenario.fingerprint() for p in points}) == 4


def test_expand_grid_validates_eagerly():
    with pytest.raises(ConfigError) as err:
        expand_grid(Scenario(), [parse_axis_spec("scheduler=clook,bogus")])
    assert err.value.path == "scenario.node.disks[0].scheduler.kind"


def test_expand_grid_heterogeneous_node_overrides():
    points = expand_grid(
        Scenario(), [parse_axis_spec("scheduler=clook,fifo")],
        node_overrides={3: {"disks[0].cache.nsegments": 0}})
    assert len(points) == 2
    for point in points:
        straggler = point.scenario.node_config_for(3)
        assert straggler.disks[0].cache.nsegments == 0
        # the rest of the cluster keeps the grid point's stack
        assert point.scenario.node_config_for(0).disks[0].cache.nsegments == 4
    assert points[1].scenario.node_config_for(0).disks[0] \
        .scheduler.kind == "fifo"


# -- running ------------------------------------------------------------------
@pytest.fixture(scope="module")
def wavelet_sweep():
    base = Scenario().with_overrides({"cluster.nnodes": 1, "seed": 1})
    axes = [parse_axis_spec("drive_cache_segments=0,4")]
    return run_sweep(base, axes, experiment="wavelet", parallel=False)


def test_nondefault_scenario_changes_metrics(wavelet_sweep):
    """The acceptance claim: an ablated stack is measurably different."""
    uncached, cached = wavelet_sweep
    assert uncached.label == "drive_cache_segments=0"
    assert uncached.fingerprint != cached.fingerprint
    assert uncached.metrics["duration"] != cached.metrics["duration"]
    assert uncached.metrics["requests_per_second"] != \
        cached.metrics["requests_per_second"]


def test_render_sweep_table(wavelet_sweep):
    table = render_sweep_table(wavelet_sweep, title="cache ablation")
    lines = table.splitlines()
    assert lines[0] == "cache ablation"
    header = lines[2]
    for column in ("drive_cache_segments", "requests", "read%",
                   "req/s", "duration"):
        assert column in header
    # one row per grid point, each carrying its axis value
    rows = [line for line in lines[4:-1]]
    assert len(rows) == 2
    assert rows[0].split()[0] == "0"
    assert rows[1].split()[0] == "4"


def test_sweep_json_round_trips(wavelet_sweep):
    data = json.loads(sweep_to_json(wavelet_sweep))
    assert [d["label"] for d in data] == ["drive_cache_segments=0",
                                         "drive_cache_segments=4"]
    assert data[0]["overrides"] == {"drive_cache_segments": "0"}
    assert data[0]["metrics"]["total_requests"] > 0


def test_sweep_runs_land_in_catalog_with_scenarios(tmp_path):
    from repro.store import RunCatalog
    base = Scenario().with_overrides({"cluster.nnodes": 1})
    run_sweep(base, [parse_axis_spec("scheduler=fifo")],
              experiment="baseline", duration=40.0,
              parallel=False, sink=str(tmp_path))
    catalog = RunCatalog(tmp_path)
    assert catalog.runs() == ["baseline@scheduler=fifo"]
    scenario = catalog.scenario("baseline@scheduler=fifo")
    assert scenario.node.disk.scheduler.kind == "fifo"
    assert scenario.name == "scheduler=fifo"


def test_sweep_results_stamp_catalog_run_ids(tmp_path):
    """Each grid point knows the catalog run id it was stored under."""
    from repro.store import RunCatalog
    base = Scenario().with_overrides({"cluster.nnodes": 1})
    results = run_sweep(base, [parse_axis_spec("scheduler=clook,fifo")],
                        experiment="baseline", duration=40.0,
                        parallel=False, sink=str(tmp_path))
    assert [r.run_id for r in results] == [
        "baseline@scheduler=clook", "baseline@scheduler=fifo"]
    assert RunCatalog(tmp_path).runs() == \
        sorted(r.run_id for r in results)
    data = json.loads(sweep_to_json(results))
    assert [d["run_id"] for d in data] == [r.run_id for r in results]


def test_sweep_without_sink_has_no_run_ids(wavelet_sweep):
    assert all(r.run_id is None for r in wavelet_sweep)
    data = json.loads(sweep_to_json(wavelet_sweep))
    assert all(d["run_id"] is None for d in data)


# -- CLI ----------------------------------------------------------------------
def test_cli_sweep_smoke(tmp_path, capsys):
    from repro.cli import main
    out_json = tmp_path / "sweep.json"
    rc = main(["sweep", "--on", "baseline", "--duration", "40",
               "--nodes", "1", "--grid", "scheduler=clook",
               "--json", str(out_json)])
    assert rc == 0
    table = capsys.readouterr().out
    assert "scheduler" in table and "req/s" in table
    assert json.loads(out_json.read_text())[0]["label"] == \
        "scheduler=clook"


def test_cli_sweep_requires_grid(capsys):
    from repro.cli import main
    assert main(["sweep"]) == 2


def test_cli_grid_rejected_outside_sweep():
    from repro.cli import main
    with pytest.raises(SystemExit):
        main(["baseline", "--grid", "scheduler=fifo"])
