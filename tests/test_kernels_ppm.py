"""Unit and property tests for the PPM hydrodynamics kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.kernels import PPMState, advect_step, ppm_reconstruct
from repro.apps.kernels.ppm_hydro import flops_per_cell_step, run_advection


def gaussian(n=128):
    x = np.linspace(0, 1, n, endpoint=False)
    return np.exp(-200 * (x - 0.5) ** 2)


def square(n=128):
    x = np.linspace(0, 1, n, endpoint=False)
    return ((x > 0.3) & (x < 0.6)).astype(float)


def test_reconstruction_is_exact_for_constants():
    u = np.full(32, 3.7)
    left, right = ppm_reconstruct(u)
    assert np.allclose(left, 3.7)
    assert np.allclose(right, 3.7)


def test_reconstruction_interfaces_bounded_by_neighbors():
    u = square(64)
    left, right = ppm_reconstruct(u)
    lo = np.minimum(u, np.minimum(np.roll(u, 1), np.roll(u, -1)))
    hi = np.maximum(u, np.maximum(np.roll(u, 1), np.roll(u, -1)))
    assert (left >= lo - 1e-12).all() and (left <= hi + 1e-12).all()
    assert (right >= lo - 1e-12).all() and (right <= hi + 1e-12).all()


def test_advection_conserves_mass():
    u = gaussian(256)
    out = run_advection(u, velocity=1.0, dx=1.0 / 256, cfl=0.8, nsteps=50)
    assert np.sum(out) == pytest.approx(np.sum(u), rel=1e-12)


def test_advection_no_new_extrema_for_square_wave():
    u = square(128)
    out = run_advection(u, velocity=1.0, dx=1.0 / 128, cfl=0.6, nsteps=40)
    assert out.min() >= -1e-10
    assert out.max() <= 1.0 + 1e-10


def test_full_period_returns_profile():
    n = 256
    u = gaussian(n)
    # CFL=1.0 advects exactly one cell per step: n steps = one period.
    out = run_advection(u, velocity=1.0, dx=1.0 / n, cfl=1.0, nsteps=n)
    assert np.allclose(out, u, atol=1e-10)


def test_advection_moves_peak_the_right_way():
    n = 128
    u = gaussian(n)
    out = run_advection(u, velocity=1.0, dx=1.0 / n, cfl=0.5, nsteps=20)
    # 20 steps at CFL 0.5 -> 10 cells to the right
    assert abs(int(np.argmax(out)) - (int(np.argmax(u)) + 10)) <= 1


def test_negative_velocity_moves_left():
    n = 128
    u = gaussian(n)
    out = run_advection(u, velocity=-1.0, dx=1.0 / n, cfl=0.5, nsteps=20)
    assert abs(int(np.argmax(out)) - (int(np.argmax(u)) - 10)) <= 1


def test_ppm_sharper_than_first_order_upwind():
    n = 128
    u = square(n)
    dx = 1.0 / n
    cfl = 0.5
    steps = 2 * n  # one full period
    ppm = run_advection(u, 1.0, dx, cfl, steps)
    # first-order upwind for reference
    ref = u.copy()
    for _ in range(steps):
        ref = ref - cfl * (ref - np.roll(ref, 1))
    err_ppm = np.abs(ppm - u).sum()
    err_upwind = np.abs(ref - u).sum()
    assert err_ppm < 0.5 * err_upwind


def test_cfl_violation_rejected():
    state = PPMState(gaussian(), dx=1.0 / 128, velocity=1.0)
    with pytest.raises(ValueError):
        advect_step(state, dt=2.0 / 128)


def test_state_validation():
    with pytest.raises(ValueError):
        PPMState(np.zeros((4, 4)).ravel()[:3], dx=1.0, velocity=1.0)
    with pytest.raises(ValueError):
        PPMState(np.zeros(16), dx=0.0, velocity=1.0)
    with pytest.raises(ValueError):
        run_advection(np.zeros(16), 1.0, 0.1, cfl=0.0, nsteps=1)


def test_flops_estimate_positive():
    assert flops_per_cell_step() > 0


@settings(deadline=None, max_examples=25)
@given(st.integers(min_value=8, max_value=64),
       st.floats(min_value=0.1, max_value=1.0),
       st.integers(min_value=1, max_value=20))
def test_mass_conservation_property(n, cfl, nsteps):
    rng = np.random.default_rng(n)
    u = rng.random(n)
    out = run_advection(u, velocity=1.0, dx=1.0 / n, cfl=cfl, nsteps=nsteps)
    assert np.sum(out) == pytest.approx(np.sum(u), rel=1e-10)
    assert np.isfinite(out).all()
