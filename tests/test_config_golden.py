"""The default scenario reproduces the pre-scenario stack bit for bit.

The metric values below were captured from the experiment runner
*before* the configuration layer existed (nnodes=2, seed=1,
baseline_duration=300).  The refactor routes every construction through
``Scenario`` — these tests pin that the default route is numerically
invisible, and that an explicit ``Scenario`` takes the same path as the
legacy keyword arguments.
"""

import pytest

from repro.config import Scenario
from repro.core import ExperimentRunner

#: (total_requests, read_fraction, requests_per_second, duration,
#:  mean_size_kb, mean_pending, kb_moved) at nnodes=2 seed=1
GOLDEN = {
    "baseline": (546, 0.0, 0.91, 300.0,
                 1.2747252747252746, 1.0, 696.0),
    "ppm": (532, 0.06015037593984962, 1.1498440913458223,
            231.33571064287787, 1.5, 1.0, 798.0),
    "wavelet": (15961, 0.5172608232566882, 23.202771255277224,
                343.94598439119295, 3.8795814798571517,
                1.3828707474469017, 61922.0),
    "nbody": (732, 0.17486338797814208, 1.6224120105942452,
              225.59004593780355, 1.8114754098360655, 1.0, 1326.0),
    "combined": (48105, 0.5317534559817066, 31.023722544478584,
                 775.2938083273543, 3.875044174202266,
                 2.0466687454526555, 186409.0),
}


def golden_scenario():
    return Scenario().with_overrides({
        "seed": 1,
        "cluster.nnodes": 2,
        "experiment.baseline_duration": 300.0,
    })


def _assert_golden(metrics, name):
    expected = GOLDEN[name]
    got = (metrics.total_requests, metrics.read_fraction,
           metrics.requests_per_second, metrics.duration,
           metrics.mean_size_kb, metrics.mean_pending, metrics.kb_moved)
    assert got == expected, f"{name}: {got} != golden {expected}"


@pytest.fixture(scope="module")
def legacy_runner():
    return ExperimentRunner(nnodes=2, seed=1, baseline_duration=300.0)


@pytest.fixture(scope="module")
def scenario_runner():
    return ExperimentRunner(scenario=golden_scenario())


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_legacy_kwargs_bit_identical(legacy_runner, name):
    _assert_golden(legacy_runner.run(name).metrics, name)


@pytest.mark.parametrize("name", ["baseline", "ppm", "nbody"])
def test_explicit_scenario_bit_identical(scenario_runner, name):
    # the fast subset; the legacy parametrization above already covers
    # every experiment, and both constructors resolve to one scenario
    _assert_golden(scenario_runner.run(name).metrics, name)


def test_both_constructions_resolve_to_same_scenario(legacy_runner,
                                                     scenario_runner):
    assert legacy_runner.scenario == scenario_runner.scenario
    assert legacy_runner.scenario.fingerprint() == \
        scenario_runner.scenario.fingerprint()


@pytest.mark.parametrize("name", ["baseline", "ppm"])
def test_heap_and_calendar_engines_bit_identical(name):
    # the queue swap must be invisible end to end: identical event order
    # means an identical request trace (every record, byte for byte),
    # identical duration, and therefore identical Table-1 metrics
    import numpy as np

    results = {}
    for kind in ("heap", "calendar"):
        scenario = golden_scenario().with_overrides(
            {"engine.event_queue": kind})
        results[kind] = ExperimentRunner(scenario=scenario).run(name)
    heap, calendar = results["heap"], results["calendar"]
    assert np.array_equal(heap.trace.records, calendar.trace.records)
    assert heap.duration == calendar.duration
    _assert_golden(calendar.metrics, name)


def test_engine_choice_does_not_change_fingerprint():
    # engines are interchangeable by construction, so cached analyses
    # keyed by fingerprint survive an engine switch
    base = golden_scenario()
    heap = base.with_overrides({"engine.event_queue": "heap"})
    assert heap.fingerprint() == base.fingerprint()
    assert heap != base   # ...but the scenario itself records the choice
