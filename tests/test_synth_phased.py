"""Tests for phase-aware workload synthesis."""

import numpy as np
import pytest

from repro.core import TraceDataset
from repro.synth import fit_phased_model, fit_workload_model


def phased_trace():
    """Three distinct phases: quiet / read burst / write surge."""
    rows = []
    rng = np.random.default_rng(0)
    # phase 1 (0-100 s): sparse 1 KB writes
    for t in np.sort(rng.uniform(0, 100, size=50)):
        rows.append((float(t), 44_000, 1, 1, 1.0, 0))
    # phase 2 (100-150 s): dense 16 KB reads
    for t in np.sort(rng.uniform(100, 150, size=400)):
        rows.append((float(t), int(rng.integers(96_000, 97_000)), 0, 1,
                     16.0, 0))
    # phase 3 (150-300 s): moderate 4 KB writes
    for t in np.sort(rng.uniform(150, 300, size=300)):
        rows.append((float(t), int(rng.integers(240_000, 250_000)), 1, 1,
                     4.0, 0))
    rows.sort(key=lambda r: r[0])
    return TraceDataset.from_records(rows)


@pytest.fixture(scope="module")
def phased():
    return fit_phased_model(phased_trace(), window=25.0)


def test_window_count_and_activity(phased):
    assert phased.nwindows == 12
    assert phased.active_windows >= 10


def test_rate_profile_shows_the_burst(phased):
    profile = phased.rate_profile()
    # the burst windows (100-150 s -> windows 4 and 5) dominate
    assert profile[4] > 3 * profile[0]
    assert np.argmax(profile) in (4, 5)


def test_generated_trace_preserves_phase_timing(phased):
    synth = phased.generate(rng=np.random.default_rng(1))
    real = phased_trace()
    bins = np.arange(0, 301, 25.0)
    real_counts = np.histogram(real.time, bins=bins)[0].astype(float)
    synth_counts = np.histogram(synth.time, bins=bins)[0].astype(float)
    # windowed-count correlation is high for the phased model...
    corr = np.corrcoef(real_counts, synth_counts)[0, 1]
    assert corr > 0.9
    # ... and beats the flat model by a wide margin
    flat = fit_workload_model(real).generate(real.duration,
                                             rng=np.random.default_rng(1))
    flat_counts = np.histogram(flat.time, bins=bins)[0].astype(float)
    flat_corr = np.corrcoef(real_counts, flat_counts)[0, 1]
    assert corr > flat_corr + 0.3


def test_generated_trace_preserves_phase_content(phased):
    synth = phased.generate(rng=np.random.default_rng(2))
    burst = synth.between(100, 150)
    tail = synth.between(150, 300)
    assert (burst.size_kb == 16.0).mean() > 0.9
    assert (burst.write == 0).mean() > 0.9
    assert (tail.size_kb == 4.0).mean() > 0.9
    assert (tail.write == 1).mean() > 0.9


def test_generation_sorted_and_in_range(phased):
    synth = phased.generate(rng=np.random.default_rng(3))
    assert (np.diff(synth.time) >= 0).all()
    assert synth.time.max() <= phased.source_duration


def test_empty_windows_generate_nothing():
    rows = [(0.0, 1, 1, 1, 1.0, 0), (1.0, 1, 1, 1, 1.0, 0),
            (99.0, 2, 1, 1, 1.0, 0), (100.0, 2, 1, 1, 1.0, 0)]
    model = fit_phased_model(TraceDataset.from_records(rows), window=10.0)
    assert model.active_windows == 2
    synth = model.generate(rng=np.random.default_rng(4))
    # nothing generated in the dead middle
    assert len(synth.between(20, 80)) == 0


def test_validation():
    with pytest.raises(ValueError):
        fit_phased_model(TraceDataset.empty())
    ds = phased_trace()
    with pytest.raises(ValueError):
        fit_phased_model(ds, window=0)
