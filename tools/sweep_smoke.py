#!/usr/bin/env python
"""CI smoke test for the scenario sweep runner.

Drives the ``repro-experiment sweep`` CLI over a small 2x2 grid
(scheduler x drive-cache segments) with short durations, then asserts:

* the comparison table rendered with one row per grid point;
* every grid point landed in the run catalog as its own run;
* each manifest is v2 and carries the fully-resolved scenario block
  with that point's overrides applied;
* the JSON results file round-trips and the ablated stacks produced
  different scenario fingerprints.

Usage::

    PYTHONPATH=src python tools/sweep_smoke.py [--duration 60]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.cli import main as cli_main
from repro.store import RunCatalog

AXES = {"scheduler": ("clook", "fifo"),
        "drive_cache_segments": ("0", "4")}


def run_smoke(duration: float, workdir: Path) -> int:
    sink = workdir / "runs"
    out_json = workdir / "sweep.json"
    argv = ["sweep", "--on", "baseline", "--nodes", "1",
            "--duration", str(duration),
            "--grid", "scheduler=" + ",".join(AXES["scheduler"]),
            "--grid", "drive_cache_segments="
                      + ",".join(AXES["drive_cache_segments"]),
            "--sink", str(sink), "--json", str(out_json)]
    print("repro-experiment", " ".join(argv))
    rc = cli_main(argv)
    assert rc == 0, f"sweep CLI exited {rc}"

    results = json.loads(out_json.read_text())
    assert len(results) == 4, f"expected 4 grid points, got {len(results)}"
    fingerprints = {r["fingerprint"] for r in results}
    assert len(fingerprints) == 4, "ablated stacks must differ"
    for r in results:
        assert r["metrics"]["total_requests"] > 0, r["label"]

    catalog = RunCatalog(sink)
    runs = catalog.runs()
    assert len(runs) == 4, f"expected 4 catalog runs, got {runs}"
    for run_id in runs:
        manifest = catalog.manifest(run_id)
        assert manifest["format"] == "repro-run-v2", run_id
        scenario = manifest.get("scenario")
        assert scenario is not None, f"{run_id}: no scenario block"
        overrides = dict(pair.split("=") for pair in
                         scenario["name"].split(","))
        assert scenario["node"]["disk"]["scheduler"]["kind"] == \
            overrides["scheduler"], run_id
        assert scenario["node"]["disk"]["cache"]["nsegments"] == \
            int(overrides["drive_cache_segments"]), run_id
    print(f"sweep smoke OK: 4 runs in {sink}, 4 distinct fingerprints")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=60.0,
                        help="baseline window per grid point (seconds)")
    parser.add_argument("--keep", type=Path, default=None, metavar="DIR",
                        help="run in DIR and keep the artifacts")
    args = parser.parse_args()
    if args.keep:
        args.keep.mkdir(parents=True, exist_ok=True)
        return run_smoke(args.duration, args.keep)
    with tempfile.TemporaryDirectory(prefix="sweep-smoke-") as tmp:
        return run_smoke(args.duration, Path(tmp))


if __name__ == "__main__":
    sys.exit(main())
