#!/usr/bin/env python
"""CI smoke test for the scenario sweep runner.

Drives the ``repro-experiment sweep`` CLI over two small 2x2 grids —
disk stack (scheduler x drive-cache segments) and cluster fabric
(network channels x volume policy) — with short durations, then asserts:

* the comparison table rendered with one row per grid point;
* every grid point landed in the run catalog as its own run;
* each manifest is v2 and carries the fully-resolved scenario block
  with that point's overrides applied, including the fabric blocks
  (``network``, ``pious``, ``node.disks``, ``node.volume``);
* the JSON results file round-trips and the ablated stacks produced
  different scenario fingerprints.

Usage::

    PYTHONPATH=src python tools/sweep_smoke.py [--duration 60]
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import sys
import tempfile
from pathlib import Path

from repro.cli import main as cli_main
from repro.store import RunCatalog

AXES = {"scheduler": ("clook", "fifo"),
        "drive_cache_segments": ("0", "4")}
FABRIC_AXES = {"network.channels": ("1", "2"),
               "node.volume.policy": ("single", "raid0")}


def _run_sweep_cli(sink: Path, out_json: Path, duration: float,
                   axes: dict) -> tuple:
    argv = ["sweep", "--on", "baseline", "--nodes", "1",
            "--duration", str(duration)]
    for name, values in axes.items():
        argv += ["--grid", f"{name}=" + ",".join(values)]
    argv += ["--sink", str(sink), "--json", str(out_json)]
    print("repro-experiment", " ".join(argv))
    table = io.StringIO()
    with contextlib.redirect_stdout(table):
        rc = cli_main(argv)
    sys.stdout.write(table.getvalue())
    assert rc == 0, f"sweep CLI exited {rc}"

    results = json.loads(out_json.read_text())
    assert len(results) == 4, f"expected 4 grid points, got {len(results)}"
    fingerprints = {r["fingerprint"] for r in results}
    assert len(fingerprints) == 4, "ablated stacks must differ"
    header = table.getvalue().splitlines()[2]
    for name in axes:
        assert name in header, f"table misses the {name} column"
    for r in results:
        assert r["metrics"]["total_requests"] > 0, r["label"]

    catalog = RunCatalog(sink)
    runs = catalog.runs()
    assert len(runs) == 4, f"expected 4 catalog runs, got {runs}"
    # every result row names the catalog run it was stored under
    assert sorted(r["run_id"] for r in results) == sorted(runs), \
        "sweep results must stamp their catalog run ids"
    return catalog, runs


def run_smoke(duration: float, workdir: Path) -> int:
    # -- grid 1: the disk stack ------------------------------------------
    sink = workdir / "runs"
    catalog, runs = _run_sweep_cli(sink, workdir / "sweep.json",
                                   duration, AXES)
    for run_id in runs:
        manifest = catalog.manifest(run_id)
        assert manifest["format"] == "repro-run-v2", run_id
        scenario = manifest.get("scenario")
        assert scenario is not None, f"{run_id}: no scenario block"
        overrides = dict(pair.split("=") for pair in
                         scenario["name"].split(","))
        assert scenario["node"]["disks"][0]["scheduler"]["kind"] == \
            overrides["scheduler"], run_id
        assert scenario["node"]["disks"][0]["cache"]["nsegments"] == \
            int(overrides["drive_cache_segments"]), run_id

    # -- grid 2: the cluster fabric --------------------------------------
    fabric_sink = workdir / "fabric-runs"
    catalog, runs = _run_sweep_cli(fabric_sink, workdir / "fabric.json",
                                   duration, FABRIC_AXES)
    for run_id in runs:
        scenario = catalog.manifest(run_id)["scenario"]
        overrides = dict(pair.split("=") for pair in
                         scenario["name"].split(","))
        assert scenario["network"]["channels"] == \
            int(overrides["network.channels"]), run_id
        assert scenario["node"]["volume"]["policy"] == \
            overrides["node.volume.policy"], run_id
        assert "pious" in scenario, f"{run_id}: no pious block"
        # the manifest scenario rebuilds byte-for-byte
        from repro.config import Scenario
        rebuilt = Scenario.from_dict(scenario)
        assert rebuilt.network.channels == scenario["network"]["channels"]
        assert rebuilt.node.volume.policy == \
            scenario["node"]["volume"]["policy"]
    print(f"sweep smoke OK: 4 stack runs in {sink} and 4 fabric runs "
          f"in {fabric_sink}, all with distinct fingerprints")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=60.0,
                        help="baseline window per grid point (seconds)")
    parser.add_argument("--keep", type=Path, default=None, metavar="DIR",
                        help="run in DIR and keep the artifacts")
    args = parser.parse_args()
    if args.keep:
        args.keep.mkdir(parents=True, exist_ok=True)
        return run_smoke(args.duration, args.keep)
    with tempfile.TemporaryDirectory(prefix="sweep-smoke-") as tmp:
        return run_smoke(args.duration, Path(tmp))


if __name__ == "__main__":
    sys.exit(main())
