#!/usr/bin/env python
"""CI smoke test for the whole-stack checkpoint/restore protocol.

Exercises the bit-identity contract end to end, on both event-queue
engines:

* ``baseline``: run armed (periodic checkpoints), resume from the last
  ``.ckpt``, and require the resumed run's trace records, duration, and
  metrics to equal the armed run's exactly;
* ``ppm``: the same through the application layer (resume tokens,
  coordinator holds) — per-app statistics must match too;
* a preempted sweep: finished points are skipped via their done
  markers, an interrupted point resumes from its live checkpoint, and
  the restarted sweep reproduces the uninterrupted metrics.

Usage::

    PYTHONPATH=src python tools/checkpoint_smoke.py [--duration 30]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.config import Scenario, parse_axis_spec, run_sweep
from repro.core.experiments import ExperimentRunner

TINY_PPM = {
    "cluster": {"nnodes": 2},
    "seed": 11,
    "workload": {"params": {"ppm": {"grids": 1, "grid_nx": 24,
                                    "grid_ny": 48, "steps": 6,
                                    "nnodes": 2}}},
}


def check_identical(tag: str, armed, resumed) -> None:
    assert np.array_equal(armed.trace.records, resumed.trace.records), \
        f"{tag}: trace records diverged ({len(armed.trace.records)} vs " \
        f"{len(resumed.trace.records)})"
    assert armed.duration == resumed.duration, f"{tag}: duration diverged"
    assert armed.metrics.to_dict() == resumed.metrics.to_dict(), \
        f"{tag}: metrics diverged"
    for app, stats in armed.app_stats.items():
        assert stats == resumed.app_stats.get(app), \
            f"{tag}: app stats diverged for {app}"
    print(f"  {tag}: OK ({len(armed.trace.records)} records bit-identical)")


def smoke_experiment(name: str, engine: str, duration, every: float,
                     workdir: Path) -> None:
    data = dict(TINY_PPM)
    data["engine"] = {"event_queue": engine}
    sc = Scenario.from_dict(data)
    ck = workdir / f"{name}-{engine}"
    kwargs = {"duration": duration} if name == "baseline" else {}
    armed = ExperimentRunner(scenario=sc).run(
        name, checkpoint_every=every, checkpoint_dir=ck, **kwargs)
    ckpt = ck / f"{name}.ckpt"
    assert ckpt.exists(), f"{name}/{engine}: no checkpoint was written"
    resumed = ExperimentRunner(scenario=sc).run(name, resume_from=ckpt)
    check_identical(f"{name}/{engine}", armed, resumed)


def smoke_sweep(duration: float, workdir: Path) -> None:
    base = Scenario.from_dict({"cluster": {"nnodes": 2}})
    axes = [parse_axis_spec("scheduler=clook,fifo")]
    ck = workdir / "sweep"
    reference = run_sweep(base, axes, experiment="baseline",
                          duration=duration, parallel=False,
                          checkpoint_every=duration / 3,
                          checkpoint_dir=str(ck))

    # preempt point 0: drop its done marker, plant a live checkpoint
    from repro.config.sweep import expand_grid
    point = expand_grid(base, axes)[0]
    fp = point.scenario.fingerprint()
    (ck / f"{fp}.done.json").unlink()
    ExperimentRunner(scenario=point.scenario).run(
        "baseline", duration=duration, checkpoint_every=duration / 3,
        checkpoint_dir=str(ck / f"{fp}.ckpt"))

    restarted = run_sweep(base, axes, experiment="baseline",
                          duration=duration, parallel=False,
                          checkpoint_every=duration / 3,
                          checkpoint_dir=str(ck))
    assert [r.metrics for r in reference] == \
        [r.metrics for r in restarted], "restarted sweep diverged"
    assert not (ck / f"{fp}.ckpt").exists(), "live checkpoint left behind"
    print(f"  sweep preempt/restart: OK ({len(restarted)} points)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=30.0,
                        help="baseline window in simulated seconds")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="ckpt-smoke-") as tmp:
        workdir = Path(tmp)
        for engine in ("heap", "calendar"):
            smoke_experiment("baseline", engine, args.duration,
                             args.duration / 4, workdir)
            smoke_experiment("ppm", engine, None, 0.05, workdir)
        smoke_sweep(args.duration, workdir)
    print("checkpoint smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
