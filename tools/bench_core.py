#!/usr/bin/env python
"""Benchmark the DES core and disk hot paths against a committed baseline.

Four measurements make up the core perf trajectory (``BENCH_core.json``):

* **run_loop** — raw events/sec of ``Simulator.run()`` draining a large
  pending population (an event storm: N timeouts with uniform-random
  delays, steady state after a short ``step()`` warm-up), measured for
  the heap engine (the pre-PR pop-per-event loop, kept verbatim as the
  reference) and the calendar-queue engine.  The headline number is the
  calendar/heap *speedup*.
* **experiment** — wall time and requests/sec of the baseline experiment
  (``nnodes=2, seed=1``) under both engines; end-to-end sanity that the
  queue swap helps real runs, not just storms.
* **batched_drain** — a deep-queue storm on one disk: every request
  submitted at t=0, so the batched server claims full scheduler runs
  and vectorizes their service terms while the scalar reference server
  (``Disk(batch=False)``) does one scheduler round-trip and one queued
  completion event per request.  The headline is the batched/scalar
  *speedup* on the same stream.
* **service_time** — per-call cost of ``DiskServiceModel.service_time``
  (the precomputed-table path) versus a scalar reference that redoes the
  pre-PR per-request ``sqrt``/zone math, as p50/p95 nanoseconds over
  timed batches.

A fifth, *informational* section (``checkpoint``) records the cost of a
whole-stack checkpoint epoch — capture, save, load, and restore
latency, plus the ``.ckpt`` size on disk — so the weight of periodic
checkpointing stays visible in the trajectory without gating CI.

Absolute numbers are machine-bound, so the CI gate mostly compares
*speedups* (calendar/heap, batched/scalar, table/scalar) — ratios of
two measurements taken on the same machine moments apart — against the
committed ones and fails on a >15% regression, the same shape as the
obs-overhead gate.  One absolute number is gated too: the end-to-end
``experiment.calendar_requests_per_s``, so a change that slows every
variant equally (where ratios stay flat) still trips the gate.

Usage::

    PYTHONPATH=src python tools/bench_core.py                 # measure only
    PYTHONPATH=src python tools/bench_core.py --update        # refresh JSON
    PYTHONPATH=src python tools/bench_core.py --check BENCH_core.json
"""

from __future__ import annotations

import argparse
import json
import math
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.config import Scenario
from repro.core.experiments import ExperimentRunner
from repro.disk import Disk, DiskServiceModel, IORequest
from repro.disk.scheduler import SCHEDULERS
from repro.sim import Simulator

#: gate keys: (json path, human label, unit) of every gated metric.
#: Speedups are machine-independent ratios; the end-to-end experiment
#: throughput is gated too so the batched hot path cannot silently rot
#: back to scalar request rates.
GATED = (
    (("run_loop", "speedup"),
     "run-loop events/sec (calendar vs heap)", "x"),
    (("service_time", "speedup_p50"),
     "service-time p50 (table vs scalar)", "x"),
    (("batched_drain", "speedup"),
     "deep-queue drain (batched vs scalar server)", "x"),
    (("experiment", "calendar_requests_per_s"),
     "experiment throughput (calendar engine)", " req/s"),
)


# -- run loop -----------------------------------------------------------------
def _drain_rate(kind: str, delays: list, warmup: int) -> float:
    """Events/sec of ``run()`` draining ``delays`` after ``warmup`` steps."""
    sim = Simulator(queue=kind)
    for d in delays:
        sim.timeout(d)
    for _ in range(warmup):
        sim.step()
    n = len(delays) - warmup
    t0 = perf_counter()
    sim.run()
    return n / (perf_counter() - t0)


def bench_run_loop(npending: int = 500_000, repeats: int = 3,
                   warmup: int = 2_000, seed: int = 7) -> dict:
    """Best-of-N steady-state drain rate for both engines, interleaved."""
    rng = np.random.default_rng(seed)
    delays = (rng.random(npending) * 1000.0).tolist()
    rates = {"heap": 0.0, "calendar": 0.0}
    for _ in range(repeats):
        for kind in rates:
            rates[kind] = max(rates[kind], _drain_rate(kind, delays, warmup))
    return {"npending": npending,
            "heap_events_per_s": rates["heap"],
            "calendar_events_per_s": rates["calendar"],
            "speedup": rates["calendar"] / rates["heap"]}


# -- baseline experiment ------------------------------------------------------
def _experiment_wall(kind: str, nnodes: int, seed: int) -> tuple:
    scenario = Scenario().with_overrides({"engine.event_queue": kind})
    runner = ExperimentRunner(nnodes=nnodes, seed=seed, scenario=scenario)
    t0 = perf_counter()
    result = runner.run("baseline")
    return perf_counter() - t0, result.metrics.total_requests


def bench_experiment(nnodes: int = 2, seed: int = 1,
                     repeats: int = 3) -> dict:
    """Best-of-N baseline-experiment wall time under both engines."""
    _experiment_wall("calendar", nnodes, seed)   # warm importers/caches
    walls = {"heap": float("inf"), "calendar": float("inf")}
    requests = 0
    for _ in range(repeats):
        for kind in walls:
            wall, requests = _experiment_wall(kind, nnodes, seed)
            walls[kind] = min(walls[kind], wall)
    return {"name": "baseline", "nnodes": nnodes, "seed": seed,
            "total_requests": requests,
            "heap_wall_s": walls["heap"],
            "calendar_wall_s": walls["calendar"],
            "heap_requests_per_s": requests / walls["heap"],
            "calendar_requests_per_s": requests / walls["calendar"],
            "speedup": walls["heap"] / walls["calendar"]}


# -- batched drain storm ------------------------------------------------------
def _drain_wall(workload, seed: int, batch: bool) -> float:
    """Wall time for one disk to drain ``workload`` submitted at t=0."""
    sim = Simulator(queue="calendar")
    disk = Disk(sim,
                service=DiskServiceModel(),
                scheduler=SCHEDULERS.create("clook"),
                rng=np.random.default_rng(seed),
                batch=batch)

    def submitter():
        for sector, nsectors, is_write in workload:
            disk.submit(IORequest(sector=sector, nsectors=nsectors,
                                  is_write=is_write))
        return
        yield

    sim.process(submitter(), name="submitter")
    t0 = perf_counter()
    sim.run()
    wall = perf_counter() - t0
    assert disk.stats.reads + disk.stats.writes == len(workload)
    return wall


def bench_batched_drain(nrequests: int = 4_000, repeats: int = 3,
                        seed: int = 11) -> dict:
    """Best-of-N deep-queue storm: batched server vs scalar reference.

    Every request is submitted at the same instant, the regime the
    drain path exists for: the batched server claims multi-request runs
    from the scheduler and vectorizes their service terms; the scalar
    server pays one round-trip per request.
    """
    model = DiskServiceModel()
    rng = np.random.default_rng(seed)
    workload = list(zip(
        rng.integers(0, model.geometry.total_sectors - 64,
                     size=nrequests).tolist(),
        rng.integers(1, 65, size=nrequests).tolist(),
        (rng.random(nrequests) < 0.5).tolist()))
    _drain_wall(workload, seed, batch=True)          # warm tables/caches
    walls = {"scalar": float("inf"), "batched": float("inf")}
    for _ in range(repeats):
        walls["scalar"] = min(walls["scalar"],
                              _drain_wall(workload, seed, batch=False))
        walls["batched"] = min(walls["batched"],
                               _drain_wall(workload, seed, batch=True))
    return {"nrequests": nrequests, "scheduler": "clook",
            "scalar_wall_s": walls["scalar"],
            "batched_wall_s": walls["batched"],
            "scalar_requests_per_s": nrequests / walls["scalar"],
            "batched_requests_per_s": nrequests / walls["batched"],
            "speedup": walls["scalar"] / walls["batched"]}


# -- disk service-time compute cost -------------------------------------------
def _scalar_service_time(model: DiskServiceModel, request: IORequest,
                         head: int, rng) -> float:
    """The pre-PR per-request math: sqrt seek + per-call zone lookup."""
    geo = model.geometry
    target = request.sector // geo.sectors_per_cylinder
    d = abs(target - head)
    seek = 0.0 if d == 0 else (model.seek_settle
                               + model.seek_sqrt_coeff * math.sqrt(d)
                               + model.seek_linear_coeff * d)
    rate = geo.sectors_per_track_at(target) * 512 / model.rotation_time
    return (model.controller_overhead + seek
            + float(rng.random()) * model.rotation_time
            + request.nsectors * 512 / rate)


def bench_service_time(nbatches: int = 300, batch: int = 100,
                       seed: int = 3) -> dict:
    """p50/p95 per-call nanoseconds: table path vs scalar reference.

    Per-call timer overhead would swamp a ~1 us call, so calls are timed
    in batches of ``batch`` and the percentiles taken over batch means;
    both variants run the same request stream.
    """
    model = DiskServiceModel()
    geo = model.geometry
    rng = np.random.default_rng(seed)
    sectors = rng.integers(0, geo.total_sectors - 8, size=batch)
    requests = [IORequest(sector=int(s), nsectors=8, is_write=False)
                for s in sectors]
    heads = rng.integers(0, geo.cylinders, size=batch).tolist()
    model.service_time(requests[0], heads[0], rng)   # build the tables

    def _percentiles(fn) -> dict:
        draws = np.random.default_rng(seed)
        samples = []
        for _ in range(nbatches):
            t0 = perf_counter()
            for request, head in zip(requests, heads):
                fn(model, request, head, draws)
            samples.append((perf_counter() - t0) / batch * 1e9)
        arr = np.asarray(samples)
        return {"p50": float(np.percentile(arr, 50)),
                "p95": float(np.percentile(arr, 95))}

    table = _percentiles(DiskServiceModel.service_time)
    scalar = _percentiles(_scalar_service_time)
    return {"calls_per_batch": batch, "batches": nbatches,
            "table_ns": table, "scalar_ns": scalar,
            "speedup_p50": scalar["p50"] / table["p50"],
            "speedup_p95": scalar["p95"] / table["p95"]}


# -- checkpoint/restore cost --------------------------------------------------
def bench_checkpoint(repeats: int = 3, duration: float = 30.0) -> dict:
    """Whole-stack snapshot/restore latency and ``.ckpt`` size (not gated).

    Times the four legs separately on a mid-run baseline checkpoint
    (``nnodes=2``): reading + verifying the envelope, rebuilding a
    restored stack from the tree, re-capturing a quiescent stack, and
    the atomic write.  Informational only — the numbers track how heavy
    a checkpoint epoch is, they do not fail CI.
    """
    import tempfile

    from repro.checkpoint import (
        capture_state,
        drain_to_quiescence,
        load_checkpoint,
        save_checkpoint,
        verify_restored_queue,
    )

    best = {"load_ms": float("inf"), "restore_ms": float("inf"),
            "capture_ms": float("inf"), "save_ms": float("inf")}
    with tempfile.TemporaryDirectory(prefix="bench-ckpt-") as tmp:
        ck = Path(tmp)
        ExperimentRunner(nnodes=2, seed=1).run(
            "baseline", duration=duration,
            checkpoint_every=duration / 2, checkpoint_dir=ck)
        path = ck / "baseline.ckpt"
        size = path.stat().st_size
        tree = load_checkpoint(path)
        for _ in range(repeats):
            t0 = perf_counter()
            tree = load_checkpoint(path)
            best["load_ms"] = min(best["load_ms"],
                                  (perf_counter() - t0) * 1e3)

            t0 = perf_counter()
            runner = ExperimentRunner(nnodes=2, seed=1)
            sim, cluster = runner._resume_build(tree)
            drain_to_quiescence(sim)
            verify_restored_queue(sim, tree)
            best["restore_ms"] = min(best["restore_ms"],
                                     (perf_counter() - t0) * 1e3)

            t0 = perf_counter()
            again = capture_state(sim, cluster, meta=tree["meta"])
            best["capture_ms"] = min(best["capture_ms"],
                                     (perf_counter() - t0) * 1e3)

            t0 = perf_counter()
            save_checkpoint(again, ck / "bench.ckpt")
            best["save_ms"] = min(best["save_ms"],
                                  (perf_counter() - t0) * 1e3)
    return {"name": "baseline", "nnodes": 2, "duration_s": duration,
            "ckpt_bytes": size, **best}


# -- harness ------------------------------------------------------------------
def measure(npending: int = 500_000, repeats: int = 3) -> dict:
    return {"schema": 2,
            "run_loop": bench_run_loop(npending=npending, repeats=repeats),
            "experiment": bench_experiment(repeats=repeats),
            "batched_drain": bench_batched_drain(repeats=repeats),
            "service_time": bench_service_time(),
            "checkpoint": bench_checkpoint(repeats=repeats)}


def _get(result: dict, path: tuple) -> float:
    for key in path:
        result = result[key]
    return float(result)


def render(result: dict) -> str:
    run = result["run_loop"]
    exp = result["experiment"]
    drain = result["batched_drain"]
    svc = result["service_time"]
    ckpt = result["checkpoint"]
    return "\n".join([
        f"run loop   heap {run['heap_events_per_s'] / 1e6:6.3f} M ev/s   "
        f"calendar {run['calendar_events_per_s'] / 1e6:6.3f} M ev/s   "
        f"speedup {run['speedup']:5.2f}x",
        f"experiment heap {exp['heap_wall_s'] * 1e3:8.1f} ms   "
        f"calendar {exp['calendar_wall_s'] * 1e3:8.1f} ms   "
        f"({exp['calendar_requests_per_s']:,.0f} req/s)   "
        f"speedup {exp['speedup']:5.2f}x",
        f"drain      scalar {drain['scalar_wall_s'] * 1e3:8.1f} ms   "
        f"batched  {drain['batched_wall_s'] * 1e3:8.1f} ms   "
        f"({drain['batched_requests_per_s']:,.0f} req/s)   "
        f"speedup {drain['speedup']:5.2f}x",
        f"service    scalar p50 {svc['scalar_ns']['p50']:7.0f} ns   "
        f"table p50 {svc['table_ns']['p50']:7.0f} ns   "
        f"speedup {svc['speedup_p50']:5.2f}x "
        f"(p95 {svc['speedup_p95']:.2f}x)",
        f"checkpoint capture {ckpt['capture_ms']:6.1f} ms   "
        f"save {ckpt['save_ms']:6.1f} ms   "
        f"load {ckpt['load_ms']:6.1f} ms   "
        f"restore {ckpt['restore_ms']:6.1f} ms   "
        f"({ckpt['ckpt_bytes'] / 1024:,.0f} KiB, not gated)",
    ])


def check(result: dict, baseline: dict, tolerance: float) -> int:
    """Fail (rc 1) when any gated metric regressed past ``tolerance``."""
    rc = 0
    for path, label, unit in GATED:
        committed = _get(baseline, path)
        measured = _get(result, path)
        floor = committed * (1.0 - tolerance)
        verdict = "ok" if measured >= floor else "FAIL"
        print(f"{verdict:>4}  {label}: measured {measured:,.2f}{unit} vs "
              f"committed {committed:,.2f}{unit} "
              f"(floor {floor:,.2f}{unit})")
        if measured < floor:
            rc = 1
    return rc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="DES core / disk hot-path benchmark")
    parser.add_argument("--update", nargs="?", const="BENCH_core.json",
                        metavar="PATH",
                        help="write results to PATH (default BENCH_core.json)")
    parser.add_argument("--check", metavar="PATH",
                        help="compare against the committed baseline at PATH")
    parser.add_argument("--npending", type=int, default=500_000,
                        help="event-storm population for the run-loop bench")
    parser.add_argument("--repeats", type=int, default=3,
                        help="take the best of N runs per variant")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional speedup regression")
    args = parser.parse_args(argv)

    result = measure(npending=args.npending, repeats=args.repeats)
    print(render(result))
    if args.update:
        Path(args.update).write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {args.update}")
    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        return check(result, baseline, args.tolerance)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
