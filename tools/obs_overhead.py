#!/usr/bin/env python
"""Measure the wall-time overhead of the observability layer.

Runs the wavelet experiment with and without ``obs`` instrumentation and
compares best-of-N wall times.  The obs layer is designed to be free
when disabled (the hot paths guard every instrument behind one attribute
test) and cheap when enabled (histograms are one ``frexp`` per
observation; most metrics are harvested once at end of run) — CI fails
the build if an instrumented run costs more than ``--threshold`` times
an uninstrumented one.

Usage::

    PYTHONPATH=src python tools/obs_overhead.py [--threshold 1.10]
"""

from __future__ import annotations

import argparse
from time import perf_counter

from repro.core import ExperimentRunner


def _one_run(nnodes: int, seed: int, obs: bool) -> float:
    runner = ExperimentRunner(nnodes=nnodes, seed=seed, obs=obs)
    t0 = perf_counter()
    runner.run("wavelet")
    return perf_counter() - t0


def measure(nnodes: int = 2, seed: int = 1, repeats: int = 3) -> dict:
    """Best-of-N wall seconds for plain vs instrumented wavelet runs.

    One warm-up run first, then the variants *interleaved* so slow
    drifts of a shared machine hit both sides equally; best-of-N
    discards the scheduling hiccups.
    """
    _one_run(nnodes, seed, obs=False)  # warm caches / JIT'd importers
    plain = instrumented = float("inf")
    for _ in range(repeats):
        plain = min(plain, _one_run(nnodes, seed, obs=False))
        instrumented = min(instrumented, _one_run(nnodes, seed, obs=True))
    return {"plain_s": plain, "instrumented_s": instrumented,
            "ratio": instrumented / plain if plain else float("inf")}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="obs-layer overhead smoke check")
    parser.add_argument("--nodes", type=int, default=2)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--repeats", type=int, default=3,
                        help="take the best of N runs per variant")
    parser.add_argument("--threshold", type=float, default=1.10,
                        help="fail if instrumented/plain exceeds this")
    args = parser.parse_args(argv)
    result = measure(nnodes=args.nodes, seed=args.seed,
                     repeats=args.repeats)
    print(f"plain        {result['plain_s'] * 1000:9.1f} ms")
    print(f"instrumented {result['instrumented_s'] * 1000:9.1f} ms")
    print(f"ratio        {result['ratio']:9.3f}  "
          f"(threshold {args.threshold:.2f})")
    if result["ratio"] > args.threshold:
        print("FAIL: observability overhead exceeds threshold")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
