#!/usr/bin/env python
"""CI smoke test for the ``repro-serve`` experiment service.

Boots the real daemon as a subprocess on an ephemeral port, then drives
the whole serving story over HTTP:

* submit a 2x1 grid sweep (``scheduler=clook,fifo``) and poll the job
  to ``finished``;
* assert both grid points landed in the service catalog and the job
  record stamps their run ids;
* fetch ``/v1/analysis/{run}/metrics`` for each run and check the
  numbers are bit-identical to ``repro-trace analyze --json`` reading
  the same catalog directly;
* repeat one analysis request and assert the daemon answers it with
  ``304 Not Modified`` from the held ETag;
* restart the daemon on the same root and confirm the finished jobs
  and cached analyses are still served.

A second phase exercises the scheduler and tenancy on a fresh root with
a ``tenants.toml``:

* reject a missing and a wrong bearer token with 401;
* queue a three-job priority/dependency DAG under two tenants on an
  accept-only daemon (``--workers 0``) and assert the over-quota
  submission is a 429;
* assert jobs are tenant-scoped: reading or cancelling another
  tenant's job is 403, and the job table only lists your own;
* assert the catalog read routes are tenant-scoped too: tokenless
  ``GET /v1/runs`` is 401, and a foreign-tenant catalog 403s on both
  the runs index and ``GET /v1/analysis/...``;
* kill the daemon mid-DAG, restart it with workers, stream the
  dependent job's progress as Server-Sent Events (at least one
  ``point`` event must arrive live), and assert the dependent never
  started before its dependency finished.

Usage::

    PYTHONPATH=src python tools/serve_smoke.py [--duration 60]
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import re
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.serve import AuthError, QuotaExceeded, ServeClient
from repro.store.cli import main as trace_main

GRID = "scheduler=clook,fifo"
EXPECTED_RUNS = ["baseline@scheduler=clook", "baseline@scheduler=fifo"]

TENANTS_TOML = """\
[tenants.team-a]
token = "smoke-token-a"
max_queued = 4

[tenants.team-b]
token = "smoke-token-b"
max_queued = 1
"""


def start_daemon(root: Path, workers: int = 2) -> tuple:
    """Launch ``repro-serve serve`` on an ephemeral port; returns
    ``(process, url)`` once the daemon announces itself."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve.cli", "serve",
         "--root", str(root), "--port", "0",
         "--workers", str(workers)],
        stderr=subprocess.PIPE, text=True)
    line = process.stderr.readline()
    match = re.search(r"listening on (http://\S+)", line)
    assert match, f"daemon did not announce a URL: {line!r}"
    print(line.strip())
    return process, match.group(1)


def stop_daemon(process: subprocess.Popen) -> None:
    process.send_signal(signal.SIGINT)
    process.wait(timeout=30)
    assert process.returncode == 0, \
        f"daemon exited {process.returncode}"


def cli_analysis(root: Path, run_id: str) -> dict:
    """The same numbers via ``repro-trace analyze --json``."""
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        rc = trace_main(["analyze", str(root / "catalogs" / "default"),
                         run_id, "--pipelines", "metrics", "--json"])
    assert rc == 0, f"repro-trace analyze exited {rc}"
    return json.loads(out.getvalue())[run_id]["metrics"]


def run_smoke(duration: float, root: Path) -> int:
    from repro.config import Scenario
    scenario = Scenario().with_overrides(
        {"cluster.nnodes": 1, "seed": 3}).to_dict()

    process, url = start_daemon(root)
    try:
        client = ServeClient(url)
        job = client.submit(scenario=scenario,
                            duration=duration, grid=[GRID])
        print(f"submitted {job['id']} ({job['kind']})")
        final = client.wait(job["id"], timeout=300)
        assert final["state"] == "finished", final
        assert sorted(final["run_ids"]) == EXPECTED_RUNS, final["run_ids"]
        runs = client.runs()["default"]
        assert sorted(r["run"] for r in runs) == EXPECTED_RUNS

        for run_id in EXPECTED_RUNS:
            answer = client.analysis(run_id, pipeline="metrics")
            assert not answer.from_cache
            assert answer.etag, "analysis response must carry an ETag"
            expected = cli_analysis(root, run_id)
            assert answer.result == expected, \
                f"{run_id}: HTTP analysis differs from repro-trace"

        again = client.analysis(EXPECTED_RUNS[0], pipeline="metrics")
        assert again.from_cache, "second identical request must be a 304"
        served_304s = client.metrics()["serve.analysis_304s"]["value"]
        assert served_304s >= 1, "daemon never counted a 304"
        print(f"analysis verified for {len(EXPECTED_RUNS)} runs "
              f"(revalidation: {served_304s:.0f} x 304)")
    finally:
        stop_daemon(process)

    # a fresh daemon on the same root serves the same state
    process, url = start_daemon(root)
    try:
        client = ServeClient(url)
        job = client.job(final["id"])
        assert job["state"] == "finished"
        answer = client.analysis(EXPECTED_RUNS[1], pipeline="metrics")
        assert answer.result == cli_analysis(root, EXPECTED_RUNS[1])
    finally:
        stop_daemon(process)
    print(f"serve smoke OK: {len(EXPECTED_RUNS)} runs served from {root}")
    return 0


def expect_error(kind, status: int, what: str, call) -> None:
    try:
        call()
    except kind as exc:
        assert exc.status == status, f"{what}: got {exc.status}"
        print(f"{what}: rejected as expected ({status})")
        return
    raise AssertionError(f"{what}: was accepted")


def run_phase2(duration: float, root: Path) -> int:
    """Scheduler + tenancy: DAG under two tenants, SSE, restart."""
    from repro.config import Scenario
    scenario = Scenario().with_overrides(
        {"cluster.nnodes": 1, "seed": 5}).to_dict()
    root.mkdir(parents=True, exist_ok=True)
    (root / "tenants.toml").write_text(TENANTS_TOML)

    # accept-only daemon: the DAG queues durably, nothing dispatches
    process, url = start_daemon(root, workers=0)
    try:
        expect_error(AuthError, 401, "tokenless submit",
                     lambda: ServeClient(url).submit(duration=duration))
        expect_error(AuthError, 401, "wrong-token submit",
                     lambda: ServeClient(url, token="nope")
                     .submit(duration=duration))

        team_a = ServeClient(url, token="smoke-token-a")
        team_b = ServeClient(url, token="smoke-token-b")
        head = team_a.submit(scenario=scenario, duration=duration)
        dependent = team_a.submit(scenario=scenario, duration=duration,
                                  priority=5, depends_on=[head["id"]])
        rival = team_b.submit(scenario=scenario, duration=duration,
                              priority=10)
        print(f"DAG queued: {head['id']} <- {dependent['id']} "
              f"(team-a), {rival['id']} (team-b)")
        assert dependent["depends_on"] == [head["id"]]
        assert rival["tenant"] == "team-b"
        expect_error(QuotaExceeded, 429, "over-quota submit",
                     lambda: team_b.submit(scenario=scenario,
                                           duration=duration))
        # every /v1/jobs route is gated, and jobs are tenant-scoped
        expect_error(AuthError, 401, "tokenless job read",
                     lambda: ServeClient(url).job(head["id"]))
        expect_error(AuthError, 403, "cross-tenant job read",
                     lambda: team_b.job(head["id"]))
        expect_error(AuthError, 403, "cross-tenant cancel",
                     lambda: team_b.cancel(head["id"]))
        assert all(j["tenant"] == "team-b" for j in team_b.jobs()), \
            "job table leaked another tenant's jobs"
        # the catalog read routes are gated the same way
        expect_error(AuthError, 401, "tokenless runs read",
                     lambda: ServeClient(url).runs())
        expect_error(AuthError, 403, "cross-tenant runs read",
                     lambda: team_b.runs(catalog="team-a"))
        expect_error(AuthError, 403, "cross-tenant analysis read",
                     lambda: team_b.analysis("r", catalog="team-a"))
    finally:
        stop_daemon(process)          # dies with the whole DAG queued

    # the successor inherits the half-dispatched DAG and runs it
    process, url = start_daemon(root, workers=2)
    try:
        team_a = ServeClient(url, token="smoke-token-a")
        team_b = ServeClient(url, token="smoke-token-b")
        points = 0
        for record in team_a.events(dependent["id"], timeout=300):
            points += record["event"] == "point"
        assert points >= 1, "SSE stream carried no point event"
        print(f"SSE stream over {dependent['id']}: "
              f"{points} live point event(s)")

        for client, job_id in ((team_a, head["id"]),
                               (team_a, dependent["id"]),
                               (team_b, rival["id"])):
            final = client.wait(job_id, timeout=300)
            assert final["state"] == "finished", final
        head_final = team_a.job(head["id"])
        dep_final = team_a.job(dependent["id"])
        assert dep_final["started"] >= head_final["finished"], \
            "dependent started before its dependency finished"
        # with runs on disk, the default index only shows your catalogs
        assert sorted(team_a.runs()) == ["team-a"], \
            "runs index leaked another tenant's catalog"
        assert sorted(team_b.runs()) == ["team-b"], \
            "runs index leaked another tenant's catalog"
    finally:
        stop_daemon(process)
    print(f"serve smoke phase 2 OK: DAG, tenants, and SSE from {root}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=60.0,
                        help="baseline window per grid point (seconds)")
    parser.add_argument("--keep", type=Path, default=None, metavar="DIR",
                        help="serve from DIR and keep the artifacts")
    args = parser.parse_args()
    if args.keep:
        args.keep.mkdir(parents=True, exist_ok=True)
        return run_smoke(args.duration, args.keep / "phase1") or \
            run_phase2(args.duration, args.keep / "phase2")
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        return run_smoke(args.duration, Path(tmp) / "phase1") or \
            run_phase2(args.duration, Path(tmp) / "phase2")


if __name__ == "__main__":
    sys.exit(main())
