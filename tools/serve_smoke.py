#!/usr/bin/env python
"""CI smoke test for the ``repro-serve`` experiment service.

Boots the real daemon as a subprocess on an ephemeral port, then drives
the whole serving story over HTTP:

* submit a 2x1 grid sweep (``scheduler=clook,fifo``) and poll the job
  to ``finished``;
* assert both grid points landed in the service catalog and the job
  record stamps their run ids;
* fetch ``/v1/analysis/{run}/metrics`` for each run and check the
  numbers are bit-identical to ``repro-trace analyze --json`` reading
  the same catalog directly;
* repeat one analysis request and assert the daemon answers it with
  ``304 Not Modified`` from the held ETag;
* restart the daemon on the same root and confirm the finished jobs
  and cached analyses are still served.

Usage::

    PYTHONPATH=src python tools/serve_smoke.py [--duration 60]
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import re
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.serve import ServeClient
from repro.store.cli import main as trace_main

GRID = "scheduler=clook,fifo"
EXPECTED_RUNS = ["baseline@scheduler=clook", "baseline@scheduler=fifo"]


def start_daemon(root: Path) -> tuple:
    """Launch ``repro-serve serve`` on an ephemeral port; returns
    ``(process, url)`` once the daemon announces itself."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve.cli", "serve",
         "--root", str(root), "--port", "0", "--workers", "2"],
        stderr=subprocess.PIPE, text=True)
    line = process.stderr.readline()
    match = re.search(r"listening on (http://\S+)", line)
    assert match, f"daemon did not announce a URL: {line!r}"
    print(line.strip())
    return process, match.group(1)


def stop_daemon(process: subprocess.Popen) -> None:
    process.send_signal(signal.SIGINT)
    process.wait(timeout=30)
    assert process.returncode == 0, \
        f"daemon exited {process.returncode}"


def cli_analysis(root: Path, run_id: str) -> dict:
    """The same numbers via ``repro-trace analyze --json``."""
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        rc = trace_main(["analyze", str(root / "catalogs" / "default"),
                         run_id, "--pipelines", "metrics", "--json"])
    assert rc == 0, f"repro-trace analyze exited {rc}"
    return json.loads(out.getvalue())[run_id]["metrics"]


def run_smoke(duration: float, root: Path) -> int:
    from repro.config import Scenario
    scenario = Scenario().with_overrides(
        {"cluster.nnodes": 1, "seed": 3}).to_dict()

    process, url = start_daemon(root)
    try:
        client = ServeClient(url)
        job = client.submit(scenario=scenario,
                            duration=duration, grid=[GRID])
        print(f"submitted {job['id']} ({job['kind']})")
        final = client.wait(job["id"], timeout=300)
        assert final["state"] == "finished", final
        assert sorted(final["run_ids"]) == EXPECTED_RUNS, final["run_ids"]
        runs = client.runs()["default"]
        assert sorted(r["run"] for r in runs) == EXPECTED_RUNS

        for run_id in EXPECTED_RUNS:
            answer = client.analysis(run_id, pipeline="metrics")
            assert not answer.from_cache
            assert answer.etag, "analysis response must carry an ETag"
            expected = cli_analysis(root, run_id)
            assert answer.result == expected, \
                f"{run_id}: HTTP analysis differs from repro-trace"

        again = client.analysis(EXPECTED_RUNS[0], pipeline="metrics")
        assert again.from_cache, "second identical request must be a 304"
        served_304s = client.metrics()["serve.analysis_304s"]["value"]
        assert served_304s >= 1, "daemon never counted a 304"
        print(f"analysis verified for {len(EXPECTED_RUNS)} runs "
              f"(revalidation: {served_304s:.0f} x 304)")
    finally:
        stop_daemon(process)

    # a fresh daemon on the same root serves the same state
    process, url = start_daemon(root)
    try:
        client = ServeClient(url)
        job = client.job(final["id"])
        assert job["state"] == "finished"
        answer = client.analysis(EXPECTED_RUNS[1], pipeline="metrics")
        assert answer.result == cli_analysis(root, EXPECTED_RUNS[1])
    finally:
        stop_daemon(process)
    print(f"serve smoke OK: {len(EXPECTED_RUNS)} runs served from {root}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=60.0,
                        help="baseline window per grid point (seconds)")
    parser.add_argument("--keep", type=Path, default=None, metavar="DIR",
                        help="serve from DIR and keep the artifacts")
    args = parser.parse_args()
    if args.keep:
        args.keep.mkdir(parents=True, exist_ok=True)
        return run_smoke(args.duration, args.keep)
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        return run_smoke(args.duration, Path(tmp))


if __name__ == "__main__":
    sys.exit(main())
