"""System design and tuning with the fitted workload parameter set.

The paper's stated next step: turn the characterization into a parameter
set for tuning.  This example fits the model on the combined workload,
generates a synthetic trace, and answers two design questions by replay:

1. which disk queue discipline should the nodes use?
2. how much would a faster spindle (5400 vs 4500 RPM) buy?

    python examples/disk_tuning.py
"""

import dataclasses

import numpy as np

from repro.core import ExperimentRunner
from repro.disk import DiskServiceModel
from repro.synth import fit_workload_model, replay_trace
from repro.synth.replay import compare_schedulers


def main():
    print("running the combined experiment to fit the parameter set ...")
    runner = ExperimentRunner(nnodes=2, seed=0)
    combined = runner.run("combined")

    # Fit on one node's trace: the replay target is a single disk.
    model = fit_workload_model(combined.trace.node(0))
    print("fitted parameter set:", model.summary())

    synth = model.generate(200.0, rng=np.random.default_rng(1))
    print(f"generated {len(synth)} synthetic requests over 200 s")

    print("\n1) queue discipline, at 2x load (time compressed):")
    for name, report in sorted(
            compare_schedulers(synth, time_scale=0.5).items()):
        print("  ", report)

    print("\n2) spindle speed (C-LOOK):")
    for rpm in (3600.0, 4500.0, 5400.0, 7200.0):
        service = DiskServiceModel(rpm=rpm)
        report = replay_trace(synth, scheduler="clook", service=service,
                              time_scale=0.5)
        print(f"   {rpm:6.0f} RPM: mean {report.mean_latency * 1e3:6.2f} ms, "
              f"p95 {report.p95_latency * 1e3:6.2f} ms, "
              f"busy {report.disk_busy_fraction * 100:5.1f}%")

    print("\n3) seek profile (halved seek coefficients):")
    base = DiskServiceModel()
    fast_seek = dataclasses.replace(
        base, seek_settle=base.seek_settle / 2,
        seek_sqrt_coeff=base.seek_sqrt_coeff / 2,
        seek_linear_coeff=base.seek_linear_coeff / 2)
    for label, service in (("stock", base), ("fast-seek", fast_seek)):
        report = replay_trace(synth, scheduler="clook", service=service,
                              time_scale=0.5)
        print(f"   {label:>9}: mean {report.mean_latency * 1e3:6.2f} ms")


if __name__ == "__main__":
    main()
