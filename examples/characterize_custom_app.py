"""Characterize your own application model.

The workload framework is not limited to the paper's three codes: derive
from ESSApplication, script the phase structure (input, working set,
compute, checkpoints, output), and the whole instrumentation/analysis
stack applies.  Here: a climate-model-like code with periodic
checkpointing — a pattern the related work (Miller & Katz) calls
"checkpoint I/O".

    python examples/characterize_custom_app.py
"""

from repro.apps.base import ESSApplication
from repro.cluster import BeowulfCluster
from repro.core import TraceDataset, compute_metrics
from repro.core.sizes import size_histogram
from repro.sim import Simulator
from repro.viz import scatter


class ClimateModel(ESSApplication):
    """Atmosphere time-stepper with restart checkpoints every N steps."""

    name = "climate"
    binary_kb = 512

    #: model state held in memory (KB) — fits comfortably, low paging
    state_kb = 4 * 1024
    steps = 40
    compute_per_step = 3.0
    checkpoint_interval = 10
    checkpoint_kb = 512        # full restart dump
    history_bytes = 512        # per-step diagnostics append

    def run(self):
        self._setup_address_space()
        self.stats.started_at = self.kernel.sim.now
        try:
            binary = self.map_binary()
            yield from self.load_pages(binary)
            state = self.allocate(self.state_kb)
            yield from self.load_pages(state, write=True)

            history = yield from self.kernel.create(
                f"{self.output_dir}/history.{self.node_id}")
            checkpoint_no = 0
            for step in range(self.steps):
                yield from self.compute(self.compute_per_step, region=state,
                                        touches_per_slice=6,
                                        dirty_fraction=0.5)
                yield from self.append_stats(history, self.history_bytes)
                if (step + 1) % self.checkpoint_interval == 0:
                    dump = yield from self.kernel.create(
                        f"{self.output_dir}/restart{checkpoint_no}"
                        f".{self.node_id}")
                    yield from self.write_file(dump, self.checkpoint_kb * 1024)
                    checkpoint_no += 1
        finally:
            self.stats.finished_at = self.kernel.sim.now
            self._teardown_address_space()
        return self.stats


def main():
    sim = Simulator()
    cluster = BeowulfCluster(sim, nnodes=2, seed=0)
    apps = [ClimateModel(node) for node in cluster.nodes]

    for app in apps:
        sim.process(app.install())
    sim.run(until=5.0)
    cluster.reset_trace_clocks()
    for app in apps:
        app.kernel.spawn(app.run(), name=f"climate:{app.node_id}")
    sim.run(until=2000.0)

    trace = TraceDataset(cluster.gather_traces())
    m = compute_metrics(trace, label="climate")
    print(f"climate model: {m.total_requests} requests, "
          f"{m.read_pct}% reads / {m.write_pct}% writes, "
          f"{m.requests_per_second:.2f} req/s per disk")
    print("request sizes:", size_histogram(trace))
    print()
    print(scatter(trace.time, trace.size_kb, width=70, height=12,
                  title="Request size vs. time (climate model)",
                  xlabel="time (s)", ylabel="KB"))
    print()
    print("note the checkpoint bursts every "
          f"~{ClimateModel.checkpoint_interval * ClimateModel.compute_per_step:.0f} s "
          "of compute — the 'checkpoint' I/O class of Miller & Katz.")


if __name__ == "__main__":
    main()
