"""The paper's headline experiment: the emulated production environment.

Runs PPM, wavelet, and N-body simultaneously on every node (the paper's
combined experiment), regenerates Figures 5-8, prints the locality
analysis, and exports every series to CSV.

    python examples/production_environment.py [outdir]
"""

import sys
from pathlib import Path

from repro.core import ExperimentRunner, make_figure
from repro.core.locality import (
    reuse_fraction,
    spatial_locality,
    temporal_locality,
)
from repro.core.sizes import size_histogram


def main(outdir: Path):
    runner = ExperimentRunner(nnodes=2, seed=0)
    print("running the combined multiprogramming experiment ...")
    result = runner.run("combined")
    m = result.metrics
    print(f"  {m.total_requests} requests over {m.duration:.0f} s "
          f"({m.requests_per_second:.1f} req/s per disk), "
          f"{m.read_pct}% reads")
    print(f"  request sizes: {size_histogram(result.trace)}")

    outdir.mkdir(parents=True, exist_ok=True)
    for number in (5, 6, 7, 8):
        fig = make_figure(number, result)
        print()
        print(fig.render(width=70, height=14))
        fig.to_csv(outdir / f"figure{number}.csv")

    spatial = spatial_locality(result.trace)
    temporal = temporal_locality(result.trace)
    print()
    print(f"spatial concentration: top-20% bands carry "
          f"{spatial.top_20pct_share * 100:.0f}% of requests "
          f"(gini {spatial.gini:.2f}) — the paper's ~80/20 rule")
    print(f"temporal reuse: {reuse_fraction(result.trace) * 100:.0f}% of "
          f"requests revisit a sector")
    print("hottest sectors (paper: ~45,000 and just under 100,000):")
    for sector, freq in temporal.hot_spots(5):
        print(f"  sector {sector:>9,}: {freq:.3f} accesses/s")

    result.trace.save(outdir / "combined_trace.csv")
    print(f"\nseries + trace exported to {outdir}/")


if __name__ == "__main__":
    main(Path(sys.argv[1]) if len(sys.argv) > 1 else Path("combined_out"))
