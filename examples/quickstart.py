"""Quickstart: run one experiment and look at the workload it generated.

Builds a small simulated Beowulf cluster, runs the paper's baseline and
wavelet experiments, prints the Table-1 style summary and two figures.

    python examples/quickstart.py
"""

from repro.core import ExperimentRunner, make_figure, render_table1

def main():
    # A 2-node cluster is enough to see every effect; the paper used 16.
    runner = ExperimentRunner(nnodes=2, seed=0, baseline_duration=600.0)

    print("running the baseline (quiescent system) ...")
    results = {"baseline": runner.run("baseline")}

    print("running the wavelet decomposition experiment ...")
    results["wavelet"] = runner.run("wavelet")

    print()
    print(render_table1(results))
    print()
    print(make_figure(1, results["baseline"]).render(width=70, height=16))
    print()
    print(make_figure(3, results["wavelet"]).render(width=70, height=16))

    m = results["wavelet"].metrics
    print()
    print(f"wavelet: {m.total_requests} requests over {m.duration:.0f} s, "
          f"{m.read_pct}% reads — the paper's Table 1 reports 49%.")


if __name__ == "__main__":
    main()
