"""The trace store end to end: stream, inspect, query, replay.

Runs a small combined experiment with a run-catalog sink (per-node
``.rpt`` files written *during* the run with bounded memory), then works
entirely from disk: lists the catalog, prints the chunk index, answers a
time-window query while counting how many chunks the index let it skip,
reloads the merged ``TraceDataset`` for the analysis layer, and replays
the stored trace against two disk schedulers without ever materialising
it whole.

    python examples/trace_store.py [catalog_dir]
"""

import sys
from pathlib import Path

from repro.core import ExperimentRunner, compute_metrics
from repro.store import RunCatalog, TraceReader, TraceWriter
from repro.synth.replay import replay_trace


def main(root: Path) -> None:
    print(f"== streaming a combined run into {root}/ ==")
    runner = ExperimentRunner(nnodes=2, seed=0, sink=root)
    result = runner.run("combined")
    print(f"simulated {len(result.trace)} requests over "
          f"{result.duration:.0f} s; streamed to {runner.last_run_dir}")

    catalog = RunCatalog(root)
    run_id = catalog.runs()[-1]
    manifest = catalog.manifest(run_id)
    print(f"\n== catalog entry {run_id!r} ==")
    print(f"nodes {manifest['nnodes']}, seed {manifest['seed']}, "
          f"{manifest['records']} records, "
          f"{manifest['metrics']['read_pct']}% reads")

    node0 = catalog.trace_paths(run_id)[0]
    with TraceReader(node0) as reader:
        t_lo, t_hi = reader.time_span
        print(f"\n== {node0.name}: {len(reader)} records, "
              f"{reader.chunk_count} chunks, "
              f"{t_lo:.1f}..{t_hi:.1f} s ==")

    # predicate pushdown: a narrow window decompresses few chunks.
    # Re-chunk finely first — at this toy scale the whole node fits in
    # one default 64 Ki-record chunk and there is nothing to skip.
    fine = node0.with_name("node0_fine.rpt")
    with TraceReader(node0) as reader, TraceWriter(
            fine, chunk_records=2048) as writer:
        for batch in reader.iter_arrays():
            writer.append_array(batch)
    mid = (t_lo + t_hi) / 2
    with TraceReader(fine) as reader:
        window = reader.read(t0=mid - 20, t1=mid + 20)
        print(f"40 s window -> {len(window)} records; decompressed "
              f"{reader.chunks_read}/{reader.chunk_count} chunks")

    # the analysis layer sees a normal TraceDataset
    dataset = catalog.load_dataset(run_id)
    metrics = compute_metrics(dataset, label=run_id)
    print(f"\nmerged dataset: {metrics.total_requests} requests, "
          f"{metrics.read_pct}% reads / {metrics.write_pct}% writes")

    # replay straight from the stored file (streams chunk by chunk)
    print("\n== replaying node 0 from disk ==")
    for scheduler in ("fifo", "clook"):
        with TraceReader(node0) as reader:
            report = replay_trace(reader, scheduler=scheduler)
        print(f"  {report}")


if __name__ == "__main__":
    main(Path(sys.argv[1]) if len(sys.argv) > 1
         else Path("/tmp/repro_runs"))
