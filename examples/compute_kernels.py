"""The real numerical kernels behind the workload models.

Demonstrates that the three applications' compute cores are working
codes, not placeholders:

* PPM advection of a square wave (sharp-profile preservation);
* 5-level Haar decomposition of a synthetic satellite scene
  (energy compaction, exact reconstruction);
* Barnes-Hut forces vs. the O(N^2) direct sum (accuracy/θ trade-off).

    python examples/compute_kernels.py
"""

import numpy as np

from repro.apps.kernels import (
    direct_forces,
    haar2d,
    haar2d_inverse,
    tree_forces,
)
from repro.apps.kernels.haar import compression_energy
from repro.apps.kernels.ppm_hydro import run_advection
from repro.viz import scatter


def ppm_demo():
    print("== PPM advection ==")
    n = 256
    x = np.linspace(0, 1, n, endpoint=False)
    u0 = ((x > 0.25) & (x < 0.5)).astype(float)
    u = run_advection(u0, velocity=1.0, dx=1.0 / n, cfl=0.8, nsteps=n)
    # first-order upwind for comparison
    ref = u0.copy()
    for _ in range(int(n / 0.8)):
        ref = ref - 0.8 * (ref - np.roll(ref, 1))
    print(f"  mass error: {abs(u.sum() - u0.sum()):.2e}")
    print(f"  L1 error  : PPM {np.abs(u - np.roll(u0, n)).sum():.3f} vs "
          f"upwind {np.abs(ref - u0).sum():.3f}")
    print(scatter(x, u, width=64, height=10,
                  title="square wave after one transit (PPM)"))


def haar_demo():
    print("\n== Haar wavelet ==")
    # synthetic 'satellite scene': smooth field + linear trend + noise
    rng = np.random.default_rng(0)
    yy, xx = np.mgrid[0:512, 0:512] / 512.0
    scene = (128 + 60 * np.sin(4 * np.pi * xx) * np.cos(2 * np.pi * yy)
             + 40 * yy + rng.normal(0, 2.0, (512, 512)))
    coeffs = haar2d(scene, levels=5)
    back = haar2d_inverse(coeffs, levels=5)
    ll_share = compression_energy(coeffs, levels=5)
    print(f"  512x512 scene, 5 levels: LL band holds "
          f"{ll_share * 100:.2f}% of the energy")
    print(f"  reconstruction max error: {np.abs(back - scene).max():.2e}")
    kept = np.sort(np.abs(coeffs).ravel())[::-1]
    k = int(0.05 * kept.size)
    print(f"  top 5% of coefficients hold "
          f"{(kept[:k] ** 2).sum() / (kept ** 2).sum() * 100:.1f}% "
          f"of the energy (compression head-room)")


def nbody_demo():
    print("\n== Barnes-Hut N-body ==")
    rng = np.random.default_rng(1)
    n = 800
    pos = rng.normal(size=(n, 3))
    mass = np.full(n, 1.0 / n)
    exact = direct_forces(pos, mass)
    for theta in (0.3, 0.6, 1.0):
        approx = tree_forces(pos, mass, theta=theta)
        rel = np.linalg.norm(approx - exact, axis=1) / \
            (np.linalg.norm(exact, axis=1) + 1e-12)
        print(f"  theta={theta:.1f}: median force error "
              f"{np.median(rel) * 100:.2f}%")
    print("  (the study's code used an oct-tree with 8K bodies/processor "
          "and 303M total interactions)")


if __name__ == "__main__":
    ppm_demo()
    haar_demo()
    nbody_demo()
