"""Coordinated parallel I/O through the PIOUS-like striped file service.

The Beowulf platform includes PIOUS for coordinated I/O.  This example
stripes one logical file over four nodes' disks, drives it from a client
task, and shows how the striped traffic appears in every node's driver
trace.

    python examples/parallel_io_pious.py
"""

import numpy as np

from repro.cluster import BeowulfCluster, PIOUS
from repro.core import TraceDataset, compute_metrics
from repro.sim import Simulator


def main():
    sim = Simulator()
    cluster = BeowulfCluster(sim, nnodes=4, seed=0)
    pious = PIOUS(cluster, stripe_kb=8)

    def client():
        handle = pious.create("dataset", client_node=0)
        # write a 2 MB dataset, then read it back in two passes
        yield from handle.write(2 * 1024 * 1024)
        handle.seek(0)
        yield from handle.read(2 * 1024 * 1024)
        handle.seek(512 * 1024)
        yield from handle.read(1024 * 1024)

    cluster.reset_trace_clocks()
    done = sim.process(client(), name="pious-client")
    sim.run(until=600.0)
    assert done.triggered, "client did not finish"

    trace = TraceDataset(cluster.gather_traces())
    print(f"PIOUS served {pious.requests_served} striped requests")
    print(f"total driver-level requests: {len(trace)}\n")
    print(f"{'node':>4} {'requests':>9} {'reads':>6} {'writes':>7} "
          f"{'KB moved':>9}")
    for node_id in trace.nodes():
        nt = trace.node(int(node_id))
        moved = float(np.sum(nt.size_kb))
        print(f"{node_id:>4} {len(nt):>9} {len(nt.reads()):>6} "
              f"{len(nt.writes()):>7} {moved:>9.0f}")

    m = compute_metrics(trace, label="pious")
    print(f"\naggregate: {m.requests_per_second:.1f} req/s per disk, "
          f"mean request {m.mean_size_kb:.1f} KB")
    print("striping spreads one client's I/O evenly over all four disks.")


if __name__ == "__main__":
    main()
