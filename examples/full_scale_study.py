"""The complete study at the paper's scale: 16 nodes, all five
experiments, full report, Table 1, and the claim scorecard.

This is the closest thing to re-running the 1995 measurement campaign
end to end.  Expect a couple of minutes of wall time.

    python examples/full_scale_study.py [outdir]
"""

import sys
import time
from pathlib import Path

from repro.core import ExperimentRunner, full_report, make_figure
from repro.core.claims import evaluate_claims, render_scorecard
from repro.core.figures import FIGURE_EXPERIMENT


def main(outdir: Path):
    outdir.mkdir(parents=True, exist_ok=True)
    runner = ExperimentRunner(nnodes=16, seed=0)

    results = {}
    for name in ("baseline", "ppm", "wavelet", "nbody", "combined"):
        t0 = time.time()
        print(f"running {name} on 16 nodes ...", flush=True)
        results[name] = runner.run(name)
        m = results[name].metrics
        print(f"  {m.total_requests} requests "
              f"({m.requests_per_node:.0f}/disk), "
              f"{m.read_pct}%R/{m.write_pct}%W, "
              f"{m.duration:.0f} s simulated, "
              f"{time.time() - t0:.1f} s wall")

    report = full_report(results, include_figures=False,
                         title="NASA ESS I/O characterization - "
                               "full-scale reproduction (16 nodes)")
    scorecard = render_scorecard(evaluate_claims(results))
    print()
    print(scorecard)

    (outdir / "report.txt").write_text(report + "\n\n" + scorecard + "\n")
    for number, exp in sorted(FIGURE_EXPERIMENT.items()):
        fig = make_figure(number, results[exp])
        fig.to_csv(outdir / f"figure{number}.csv")
        fig.to_svg(outdir / f"figure{number}.svg")
        (outdir / f"figure{number}.txt").write_text(fig.render())
    for name, result in results.items():
        result.trace.save(outdir / f"trace_{name}.npy")
    print(f"\nreport, figures, and traces written to {outdir}/")


if __name__ == "__main__":
    main(Path(sys.argv[1]) if len(sys.argv) > 1 else Path("full_scale_out"))
