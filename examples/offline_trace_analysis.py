"""Offline analysis: characterize a trace file without re-simulating.

The analysis layer is independent of the simulator — point it at any
trace file in the repro schema (CSV or .npy) and get the full
characterization.  This script first produces a trace file (so it is
self-contained), then analyzes it purely from disk, the way you would
with traces collected elsewhere.

    python examples/offline_trace_analysis.py [trace_file]
"""

import sys
from pathlib import Path

from repro.core import (
    ExperimentRunner,
    TraceDataset,
    compute_metrics,
    miller_katz_classes,
    sequentiality,
    spatial_locality,
    temporal_locality,
)
from repro.core.patterns import arrival_structure, direction_runs
from repro.core.sizes import class_fractions, size_histogram
from repro.synth import fit_workload_model


def produce_trace(path: Path):
    print(f"(no trace supplied; producing one at {path})")
    runner = ExperimentRunner(nnodes=2, seed=0)
    result = runner.run("nbody")
    result.trace.save(path)


def analyze(path: Path):
    trace = TraceDataset.load(path)
    print(f"loaded {len(trace)} records from {path} "
          f"({trace.duration:.0f} s, nodes {list(trace.nodes())})")

    m = compute_metrics(trace)
    print(f"\nmix     : {m.read_pct}% reads / {m.write_pct}% writes, "
          f"{m.requests_per_second:.2f} req/s per disk")
    print(f"sizes   : {size_histogram(trace)}")
    print("classes : " + ", ".join(
        f"{cls.value} {frac * 100:.1f}%"
        for cls, frac in class_fractions(trace).items()))

    sp = spatial_locality(trace)
    print(f"spatial : busiest band {sp.busiest_band()[0] // 1000}K holds "
          f"{sp.busiest_band()[1] * 100:.0f}%; gini {sp.gini:.2f}")
    tl = temporal_locality(trace)
    print("temporal: hottest sectors "
          + ", ".join(f"{s:,}" for s, _ in tl.hot_spots(3)))

    seq = sequentiality(trace)
    arr = arrival_structure(trace)
    runs = direction_runs(trace)
    print(f"pattern : {seq.sequential_fraction * 100:.1f}% sequential; "
          f"IDC {arr.idc:.1f}"
          + (" (bursty)" if arr.is_bursty else "")
          + f"; mean write-train {runs.mean_write_run:.1f}")
    print("M&K     : " + ", ".join(
        f"{k} {v * 100:.0f}%"
        for k, v in miller_katz_classes(trace).items()))

    model = fit_workload_model(trace)
    out = path.with_suffix(".model.json")
    out.write_text(model.to_json())
    print(f"\nfitted parameter set -> {out}")


if __name__ == "__main__":
    if len(sys.argv) > 1:
        target = Path(sys.argv[1])
    else:
        target = Path("/tmp/repro_nbody_trace.npy")
        produce_trace(target)
    analyze(target)
